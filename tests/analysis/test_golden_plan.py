"""The committed golden plan fixture must stay verifiable.

CI's static-analysis job runs ``repro check-plan`` against this same
file; this test keeps tier-1 and CI agreeing on it, and pins that the
shipped planner still *reproduces* the fixture bit-for-bit (the plan is
a pure function of the spec — if this fails, either the planner changed
behaviour or the plan format changed without regenerating the fixture:

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.api import Experiment
    from repro.core.plans import plan_to_dict
    from repro.util import mib
    exp = Experiment(
        machine="testbed-4", n_procs=8, procs_per_node=2,
        workload_params={"block_size": mib(1), "transfer_size": mib(1) // 4},
        cb_buffer=mib(1), seed=3,
    )
    open("tests/fixtures/golden.plan.json", "w").write(
        json.dumps(plan_to_dict(exp.plan()), indent=2, sort_keys=True) + "\n")
    PY
)
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import verify_plan_file
from repro.api import Experiment
from repro.core.plans import plan_to_dict
from repro.util import mib

GOLDEN = Path(__file__).resolve().parents[1] / "fixtures" / "golden.plan.json"

GOLDEN_EXPERIMENT = Experiment(
    machine="testbed-4", n_procs=8, procs_per_node=2,
    workload_params={"block_size": mib(1), "transfer_size": mib(1) // 4},
    cb_buffer=mib(1), seed=3,
)


def test_golden_plan_verifies_clean():
    report = verify_plan_file(GOLDEN)
    assert report.ok, report.render()


def test_golden_plan_matches_the_planner():
    committed = json.loads(GOLDEN.read_text())
    # through JSON, so tuples normalize to lists before comparing
    regenerated = json.loads(json.dumps(plan_to_dict(GOLDEN_EXPERIMENT.plan())))
    assert committed == regenerated


def test_golden_plan_is_stamped():
    data = json.loads(GOLDEN.read_text())
    assert data["spec_hash"] == GOLDEN_EXPERIMENT.spec_hash()
    assert data["config"]["msg_ind"] > 0
    assert data["config"]["mem_min"] > 0
