"""Baseline ratchet and SARIF export for `repro lint`."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import (
    LINT_RULES,
    BaselineEntry,
    apply_baseline,
    lint_paths,
    load_baseline,
    to_sarif,
    write_baseline,
)
from repro.analysis.lint import Violation

REPO_ROOT = Path(__file__).resolve().parents[2]


def v(rule: str, file: str, line: int = 1, message: str = "m") -> Violation:
    return Violation(rule=rule, message=message, file=file, line=line)


class TestApplyBaseline:
    def test_empty_baseline_everything_is_fresh(self):
        found = [v("L310", "core/a.py"), v("L320", "fs/b.py")]
        fresh, grandfathered, stale = apply_baseline(found, [])
        assert fresh == found
        assert grandfathered == []
        assert stale == []

    def test_budget_absorbs_up_to_count(self):
        found = [
            v("L310", "core/a.py", 3),
            v("L310", "core/a.py", 9),
            v("L310", "core/a.py", 12),
        ]
        baseline = [BaselineEntry("L310", "core/a.py", 2, "legacy seeding")]
        fresh, grandfathered, stale = apply_baseline(found, baseline)
        assert len(fresh) == 1  # third finding exceeds the budget
        assert len(grandfathered) == 2
        assert all(reason == "legacy seeding" for _, reason in grandfathered)
        assert stale == []

    def test_unused_budget_is_stale(self):
        baseline = [BaselineEntry("L320", "fs/gone.py", 2, "pending rewrite")]
        fresh, grandfathered, stale = apply_baseline([], baseline)
        assert fresh == []
        assert grandfathered == []
        assert [e.file for e in stale] == ["fs/gone.py"]

    def test_partially_used_budget_is_stale(self):
        found = [v("L320", "fs/b.py")]
        baseline = [BaselineEntry("L320", "fs/b.py", 3, "being fixed")]
        fresh, grandfathered, stale = apply_baseline(found, baseline)
        assert fresh == []
        assert len(grandfathered) == 1
        # 2 unused slots: the ratchet demands the count be lowered.
        assert len(stale) == 1

    def test_budget_is_per_rule_and_file(self):
        found = [v("L310", "core/a.py"), v("L310", "core/b.py")]
        baseline = [BaselineEntry("L310", "core/a.py", 1, "r")]
        fresh, grandfathered, _ = apply_baseline(found, baseline)
        assert [f.file for f in fresh] == ["core/b.py"]
        assert len(grandfathered) == 1


class TestBaselineIO:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []

    def test_write_then_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [v("L310", "core/a.py"), v("L310", "core/a.py")])
        entries = load_baseline(path)
        assert len(entries) == 1
        assert entries[0].rule == "L310"
        assert entries[0].count == 2
        assert entries[0].reason  # default reason is present

    def test_rewrite_preserves_reasons(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [v("L320", "fs/b.py")])
        entries = load_baseline(path)
        entries[0].reason = "audited 2026-08: needs fs refactor"
        path.write_text(
            json.dumps(
                {"version": 1, "entries": [e.to_dict() for e in entries]}
            )
        )
        write_baseline(path, [v("L320", "fs/b.py")], previous=load_baseline(path))
        assert load_baseline(path)[0].reason == (
            "audited 2026-08: needs fs refactor"
        )

    def test_committed_baseline_is_small_and_justified(self):
        entries = load_baseline(REPO_ROOT / "lint-baseline.json")
        assert len(entries) <= 10
        for entry in entries:
            assert entry.reason.strip(), f"{entry.file} missing a reason"


class TestSarif:
    def test_minimal_document_shape(self):
        doc = to_sarif([v("L310", "core/a.py", 4, "unseeded rng")],
                       rules=LINT_RULES)
        assert doc["version"] == "2.1.0"
        assert "sarif" in doc["$schema"]
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "L310" in rule_ids and "L320" in rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "L310"
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "core/a.py"
        assert loc["region"]["startLine"] == 4

    def test_grandfathered_results_carry_suppressions(self):
        doc = to_sarif(
            [],
            [(v("L320", "fs/b.py", 7), "pending rewrite")],
            rules=LINT_RULES,
        )
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        sup = results[0]["suppressions"][0]
        assert sup["kind"] == "external"
        assert sup["justification"] == "pending rewrite"

    def test_fresh_results_have_no_suppressions(self):
        doc = to_sarif([v("L300", "serve/h.py", 2)], rules=LINT_RULES)
        assert "suppressions" not in doc["runs"][0]["results"][0]

    def test_document_is_json_serialisable(self):
        report = lint_paths([REPO_ROOT / "tests" / "analysis" / "fixtures" / "l320_pos"])
        doc = to_sarif(report.violations, rules=LINT_RULES)
        text = json.dumps(doc)
        assert json.loads(text)["runs"][0]["results"]
