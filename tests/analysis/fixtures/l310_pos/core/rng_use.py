"""L310 positives: RNGs whose seeds do not trace to trusted sources."""

import random
import time

import numpy as np


def unseeded():
    return np.random.default_rng()  # OS entropy


def wall_clock_seed():
    # L202 (wall-clock read) is suppressed so the taint finding stands alone.
    return np.random.default_rng(int(time.time()))  # repro-lint: disable=L202


def tainted_through_assignment():
    entropy_now = time.time_ns()  # repro-lint: disable=L202
    seed = entropy_now % 1000
    return np.random.default_rng(seed)  # taint survives arithmetic


def untracked_seed(payload):
    material = payload.checksum  # nothing marks this as seed material
    return np.random.default_rng(material)


def hidden_global():
    return random.random()  # module-global RNG state


def legacy_numpy():
    return np.random.rand(3)  # legacy global stream
