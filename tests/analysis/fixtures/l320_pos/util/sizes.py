"""L320 positives: cross-dimension arithmetic the lattice must catch."""

from repro.util.units import MiB, mib


def direct_mix(cap_mib, used_bytes):
    return cap_mib - used_bytes  # MiB-count minus bytes


def compare_mix(limit_bytes, window_s):
    return limit_bytes < window_s  # bytes vs seconds


def across_assignment(buf_bytes, quota_mib):
    size = buf_bytes  # dimension follows the assignment
    return size + quota_mib


def double_conversion(n_bytes):
    return mib(n_bytes)  # already bytes


def bind_mismatch():
    budget_mib = mib(16)  # mib() returns *bytes*
    return budget_mib


def time_mix(elapsed_s, lat_us):
    return elapsed_s + lat_us  # seconds plus microseconds


def rank_mix(total_bytes, n_ranks):
    return total_bytes - n_ranks
