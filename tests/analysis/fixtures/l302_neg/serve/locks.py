"""L302 negatives: ordered, sequential, or released acquisitions."""

import threading


class Ledger:
    def __init__(self, n):
        self._lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._locks = [threading.Lock() for _ in range(n)]

    def ascending_shards(self):
        with self._locks[0]:
            with self._locks[2]:  # ordered by constant shard index
                pass

    def sorted_gather(self, indexes):
        # Accumulating acquires is safe when the index is ascending:
        # the loop variable is bound by sorted(), so iteration N+1's
        # shard index is provably greater than iteration N's.
        for i in sorted(indexes):
            self._locks[i].acquire()
        for i in sorted(indexes):
            self._locks[i].release()

    def sequential(self):
        with self._locks[1]:
            pass
        with self._counter_lock:  # first lock released at with-exit
            pass

    def release_then_acquire(self):
        self._lock.acquire()
        self._lock.release()
        self._counter_lock.acquire()  # nothing held any more
        self._counter_lock.release()
