"""L302 positives: nested acquires without shard-index ordering."""

import threading


class Ledger:
    def __init__(self, n):
        self._lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._locks = [threading.Lock() for _ in range(n)]

    def nested_distinct(self):
        with self._lock:
            with self._counter_lock:  # unordered second acquire
                pass

    def descending_shards(self):
        with self._locks[1]:
            with self._locks[0]:  # wrong order: 1 then 0
                pass

    def explicit_acquire(self):
        self._lock.acquire()
        self._counter_lock.acquire()  # second acquire while held
        self._counter_lock.release()
        self._lock.release()

    def unsorted_gather(self, indexes):
        for i in indexes:  # no sorted() — acquisition order unknown
            self._locks[i].acquire()
        for i in indexes:
            self._locks[i].release()

    def held_across_branch(self, flag):
        self._lock.acquire()
        if flag:
            self._lock.release()
        with self._counter_lock:  # still held on the other path
            pass
