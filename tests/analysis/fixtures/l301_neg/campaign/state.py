"""L301 negatives: reads, locals, and shadowed names stay silent."""

_RESULTS: dict[str, int] = {}
_LIMITS = {"points": 100}

# Module-scope initialization is the one legal write site.
_RESULTS["warm"] = 0
_LIMITS.update(budget=10)


def read(key):
    return _RESULTS.get(key)  # reads are fine


def local_scratch():
    _RESULTS = {}  # function-local shadow, not the module global
    _RESULTS["x"] = 1
    return _RESULTS


def param_shadow(_QUEUE):
    _QUEUE.append(1)  # parameter, not module state
    return _QUEUE


def loop_shadow(items):
    for _LIMITS in items:  # loop target shadows the global
        _LIMITS.update(x=1)
