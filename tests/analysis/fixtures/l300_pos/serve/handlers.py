"""L300 positives: blocking calls reachable inside async def bodies."""

import http.client
import time


async def sleepy():
    time.sleep(0.5)  # blocks the event loop


async def chained(pool, job):
    return pool.submit(job).result()  # executor future, awaited wrong


async def tracked(pool, job):
    fut = pool.submit(job)
    return fut.result()  # flow-tracked across the assignment


async def sync_http(host):
    conn = http.client.HTTPConnection(host)
    conn.request("GET", "/metrics")
    return conn.getresponse()


async def file_io(path):
    with open(path) as fh:
        return fh.read()
