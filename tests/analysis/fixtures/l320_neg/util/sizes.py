"""L320 negatives: idiomatic unit handling stays silent."""

from repro.util.units import GiB, MiB, mib


def same_dimension(a_bytes, b_bytes, c_mib, d_mib):
    return a_bytes + b_bytes, c_mib - d_mib


def known_conversion(count_mib):
    total_bytes = count_mib * MiB  # count x multiplier -> bytes
    return total_bytes


def rate_math(moved_bytes, window_s):
    rate = moved_bytes / window_s  # bytes / seconds -> rate
    return rate * window_s  # rate * seconds -> bytes


def bandwidth_division(ship_bytes, path_bandwidth):
    transfer_s = ship_bytes / max(path_bandwidth, 1e-12)
    return transfer_s


def float_scaling(lat_us):
    latency_s = lat_us * 1e-6  # float literal = conversion in progress
    return latency_s


def shift_conversion(n_bytes):
    as_mib = n_bytes >> 20  # shift conversions are exempt
    return as_mib


def clamped(total_bytes, floor):
    # max() with a dimensionless operand must not smear a dimension.
    hot_bytes = max(total_bytes, floor)
    return hot_bytes


def scaled(chunk_bytes, n):
    return chunk_bytes * n + GiB
