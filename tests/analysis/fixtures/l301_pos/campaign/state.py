"""L301 positives: module-level mutables written from function scope."""

_RESULTS: dict[str, int] = {}
_QUEUE = []
_TOTAL = 0


def record(key, value):
    _RESULTS[key] = value  # item assignment on a module global


def enqueue(item):
    _QUEUE.append(item)  # mutating method on a module global


def bump(n):
    global _TOTAL
    _TOTAL = _TOTAL + n  # rebinding via an explicit global declaration


def forget(key):
    del _RESULTS[key]  # item deletion on a module global
