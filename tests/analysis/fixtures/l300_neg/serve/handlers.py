"""L300 negatives: the idiomatic async equivalents stay silent."""

import asyncio


async def sleepy():
    await asyncio.sleep(0.5)


async def executor_hop(loop, pool, job):
    # The blessed pattern: blocking work hops to the executor.
    return await loop.run_in_executor(pool, job)


def sync_helper(pool, job):
    # Blocking in a *sync* function is fine — no event loop here.
    return pool.submit(job).result()


def sync_file_io(path):
    with open(path) as fh:
        return fh.read()


async def rebound(pool, job):
    fut = pool.submit(job)
    fut = None  # re-binding kills the future tag
    return fut
