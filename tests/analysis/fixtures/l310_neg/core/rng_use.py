"""L310 negatives: every seed traces to SeedSequence/spec material."""

import numpy as np

DEFAULT_SEED = 20120907


def from_spec(spec):
    return np.random.default_rng(spec.seed)  # spec field


def from_param(seed):
    return np.random.default_rng(seed)  # seed-named parameter


def from_constant():
    return np.random.default_rng(DEFAULT_SEED)  # module constant


def through_sequence(spec):
    seq = np.random.SeedSequence(spec.seed)  # tracked across assignment
    return np.random.default_rng(seq)


def spawned_children(spec, n):
    seq = np.random.SeedSequence(entropy=spec.seed, spawn_key=(3, n))
    children = seq.spawn(4)
    return [np.random.default_rng(child) for child in children]


def derived_arithmetic(base_seed, rank):
    return np.random.default_rng(base_seed + rank * 1000)
