"""Tests for the analytic two-phase model, incl. cross-validation."""

from __future__ import annotations

import pytest

from repro.analysis.model import predict_two_phase
from repro.cluster import testbed_640
from repro.io import CollectiveHints, TwoPhaseCollectiveIO, make_context
from repro.util import ConfigurationError, gib, mib
from repro.workloads import IORWorkload


@pytest.fixture(scope="module")
def machine():
    return testbed_640()


class TestModelStructure:
    def test_rounds(self, machine):
        pred = predict_two_phase(
            machine, total_bytes=gib(1), n_aggregators=10,
            buffer_bytes=mib(8), n_nodes=10,
        )
        assert pred.n_rounds == -(-gib(1) // (10 * mib(8)))

    def test_elapsed_is_max_of_terms(self, machine):
        pred = predict_two_phase(
            machine, total_bytes=gib(1), n_aggregators=10,
            buffer_bytes=mib(8), n_nodes=10,
        )
        assert pred.elapsed_s == pytest.approx(
            max(
                pred.storage_bound_s,
                pred.stream_bound_s,
                pred.shuffle_bound_s,
                pred.round_overhead_s,
            )
        )
        assert pred.bandwidth > 0
        assert pred.binding_term in ("storage", "streams", "shuffle", "rounds")

    def test_small_buffers_round_bound(self, machine):
        pred = predict_two_phase(
            machine, total_bytes=gib(4), n_aggregators=10,
            buffer_bytes=mib(2), n_nodes=10,
        )
        big = predict_two_phase(
            machine, total_bytes=gib(4), n_aggregators=10,
            buffer_bytes=mib(128), n_nodes=10,
        )
        assert pred.bandwidth < big.bandwidth

    def test_more_aggregators_relax_stream_bound(self, machine):
        few = predict_two_phase(
            machine, total_bytes=gib(4), n_aggregators=2,
            buffer_bytes=mib(128), n_nodes=10,
        )
        many = predict_two_phase(
            machine, total_bytes=gib(4), n_aggregators=40,
            buffer_bytes=mib(128), n_nodes=10,
        )
        assert many.bandwidth >= few.bandwidth
        assert few.binding_term == "streams"

    def test_validation(self, machine):
        with pytest.raises(ConfigurationError):
            predict_two_phase(
                machine, total_bytes=0, n_aggregators=1,
                buffer_bytes=1, n_nodes=1,
            )


class TestCrossValidation:
    """The model should track the simulator on its home turf."""

    @pytest.mark.parametrize("mem_mib", [2, 8, 32, 128])
    def test_against_simulator(self, machine, mem_mib):
        mem = mib(mem_mib)
        workload = IORWorkload(120, block_size=mib(16), transfer_size=mib(2))
        ctx = make_context(
            machine, 120, procs_per_node=12, seed=7,
            hints=CollectiveHints(cb_buffer_size=mem),
        )
        sim = TwoPhaseCollectiveIO().write(
            ctx, ctx.pfs.open("f"), workload.requests()
        )
        pred = predict_two_phase(
            machine,
            total_bytes=workload.total_bytes(),
            n_aggregators=sim.n_aggregators,
            buffer_bytes=mem,
            n_nodes=10,
            inter_node_fraction=sim.inter_node_fraction,
        )
        assert pred.n_rounds == sim.n_rounds
        # Same order of magnitude and same trend; the model ignores
        # second-order contention so allow a generous band.
        ratio = pred.bandwidth / sim.bandwidth
        assert 0.4 < ratio < 2.5, (mem_mib, pred.binding_term, ratio)
