"""Tests for the analytic two-phase model, incl. cross-validation."""

from __future__ import annotations

import pytest

from repro.analysis.model import predict_collective, predict_two_phase
from repro.cluster import scaled_testbed, testbed_640
from repro.io import CollectiveHints, TwoPhaseCollectiveIO, make_context
from repro.util import ConfigurationError, gib, kib, mib
from repro.workloads import IORWorkload


@pytest.fixture(scope="module")
def machine():
    return testbed_640()


class TestModelStructure:
    def test_rounds(self, machine):
        pred = predict_two_phase(
            machine, total_bytes=gib(1), n_aggregators=10,
            buffer_bytes=mib(8), n_nodes=10,
        )
        assert pred.n_rounds == -(-gib(1) // (10 * mib(8)))

    def test_elapsed_is_max_of_terms(self, machine):
        pred = predict_two_phase(
            machine, total_bytes=gib(1), n_aggregators=10,
            buffer_bytes=mib(8), n_nodes=10,
        )
        assert pred.elapsed_s == pytest.approx(
            max(
                pred.storage_bound_s,
                pred.stream_bound_s,
                pred.shuffle_bound_s,
                pred.round_overhead_s,
            )
        )
        assert pred.bandwidth > 0
        assert pred.binding_term in ("storage", "streams", "shuffle", "rounds")

    def test_small_buffers_round_bound(self, machine):
        pred = predict_two_phase(
            machine, total_bytes=gib(4), n_aggregators=10,
            buffer_bytes=mib(2), n_nodes=10,
        )
        big = predict_two_phase(
            machine, total_bytes=gib(4), n_aggregators=10,
            buffer_bytes=mib(128), n_nodes=10,
        )
        assert pred.bandwidth < big.bandwidth

    def test_more_aggregators_relax_stream_bound(self, machine):
        few = predict_two_phase(
            machine, total_bytes=gib(4), n_aggregators=2,
            buffer_bytes=mib(128), n_nodes=10,
        )
        many = predict_two_phase(
            machine, total_bytes=gib(4), n_aggregators=40,
            buffer_bytes=mib(128), n_nodes=10,
        )
        assert many.bandwidth >= few.bandwidth
        assert few.binding_term == "streams"

    def test_validation(self, machine):
        with pytest.raises(ConfigurationError):
            predict_two_phase(
                machine, total_bytes=0, n_aggregators=1,
                buffer_bytes=1, n_nodes=1,
            )


class TestPredictCollective:
    """Geometry-aware pricing on the small testbed (4 OSTs, 1MiB stripe)."""

    def test_stripe_alignment_collapses_domains(self):
        m = scaled_testbed(4)
        # span 2MiB / 1MiB stripe: only 2 aligned domains survive, so
        # requesting 4 aggregators must price identically to 2.
        four = predict_collective(
            m, union_bytes=mib(2), span_bytes=mib(2), n_aggregators=4,
            buffer_bytes=mib(1), n_nodes=4,
        )
        two = predict_collective(
            m, union_bytes=mib(2), span_bytes=mib(2), n_aggregators=2,
            buffer_bytes=mib(1), n_nodes=4,
        )
        assert four.elapsed_s == pytest.approx(two.elapsed_s)

    def test_unaligned_domains_do_not_collapse(self):
        m = scaled_testbed(4)
        aligned = predict_collective(
            m, union_bytes=mib(2), span_bytes=mib(2), n_aggregators=4,
            buffer_bytes=mib(1), n_nodes=4,
        )
        free = predict_collective(
            m, union_bytes=mib(2), span_bytes=mib(2), n_aggregators=4,
            buffer_bytes=mib(1), n_nodes=4, stripe_aligned_domains=False,
        )
        # All 4 domains survive: each streams a quarter of the union,
        # not the half the collapsed (aligned) pair would.
        assert free.stream_bound_s == pytest.approx(aligned.stream_bound_s / 2)

    def test_stripe_cycle_collision_serializes(self):
        m = scaled_testbed(4)
        # Domains exactly one stripe cycle (4MiB) long: every round's
        # windows land on the same stripe units, so halving the buffer
        # does not spread the load and the price degrades.
        colliding = predict_collective(
            m, union_bytes=mib(16), span_bytes=mib(16), n_aggregators=4,
            buffer_bytes=kib(512), n_nodes=4,
        )
        roomy = predict_collective(
            m, union_bytes=mib(16), span_bytes=mib(16), n_aggregators=4,
            buffer_bytes=mib(4), n_nodes=4,
        )
        assert colliding.elapsed_s > roomy.elapsed_s
        assert colliding.n_rounds > roomy.n_rounds

    def test_concurrent_domain_cap_limits_streams(self):
        m = scaled_testbed(4)
        capped = predict_collective(
            m, union_bytes=mib(32), span_bytes=mib(32), n_aggregators=16,
            buffer_bytes=mib(2), n_nodes=4, stripe_aligned_domains=False,
            n_concurrent_domains=2,
        )
        free = predict_collective(
            m, union_bytes=mib(32), span_bytes=mib(32), n_aggregators=16,
            buffer_bytes=mib(2), n_nodes=4, stripe_aligned_domains=False,
        )
        assert capped.stream_bound_s > free.stream_bound_s
        assert capped.elapsed_s >= free.elapsed_s

    def test_read_factor_speeds_reads(self):
        m = scaled_testbed(4)
        write = predict_collective(
            m, union_bytes=mib(8), span_bytes=mib(8), n_aggregators=4,
            buffer_bytes=mib(2), n_nodes=4,
        )
        read = predict_collective(
            m, union_bytes=mib(8), span_bytes=mib(8), n_aggregators=4,
            buffer_bytes=mib(2), n_nodes=4, kind="read",
        )
        assert read.elapsed_s < write.elapsed_s

    def test_tracks_simulated_two_phase(self):
        m = scaled_testbed(4)
        # ior parity point: 8 ranks, union 2MiB; the sim lands ~14ms
        # at cb=1MiB and degrades as the buffer shrinks. The model must
        # stay within ~20% and preserve the ordering.
        prices = [
            predict_collective(
                m, union_bytes=mib(2), span_bytes=mib(2), n_aggregators=4,
                buffer_bytes=buf, n_nodes=4, inter_node_fraction=0.75,
            ).elapsed_s
            for buf in (mib(1), kib(512), kib(256), kib(128))
        ]
        simulated = [0.01406, 0.01488, 0.01652, 0.01978]
        for got, want in zip(prices, simulated):
            assert got == pytest.approx(want, rel=0.2)
        assert prices == sorted(prices)


class TestCrossValidation:
    """The model should track the simulator on its home turf."""

    @pytest.mark.parametrize("mem_mib", [2, 8, 32, 128])
    def test_against_simulator(self, machine, mem_mib):
        mem = mib(mem_mib)
        workload = IORWorkload(120, block_size=mib(16), transfer_size=mib(2))
        ctx = make_context(
            machine, 120, procs_per_node=12, seed=7,
            hints=CollectiveHints(cb_buffer_size=mem),
        )
        sim = TwoPhaseCollectiveIO().write(
            ctx, ctx.pfs.open("f"), workload.requests()
        )
        pred = predict_two_phase(
            machine,
            total_bytes=workload.total_bytes(),
            n_aggregators=sim.n_aggregators,
            buffer_bytes=mem,
            n_nodes=10,
            inter_node_fraction=sim.inter_node_fraction,
        )
        assert pred.n_rounds == sim.n_rounds
        # Same order of magnitude and same trend; the model ignores
        # second-order contention so allow a generous band.
        ratio = pred.bandwidth / sim.bandwidth
        assert 0.4 < ratio < 2.5, (mem_mib, pred.binding_term, ratio)
