"""Auto-selection behaviour plus the committed golden pick fixture.

``tests/fixtures/golden.auto.json`` pins, for every registered
workload, which strategy the cost model picks and the full candidate
price vector. Any drift in the cost model — a changed constant, a new
term, a different tie-break — fails here with a readable diff instead
of silently flipping campaign picks. Regenerate deliberately with:

    PYTHONPATH=src python - <<'PY'
    import json
    from tests.analysis.test_auto_selection import GOLDEN, golden_entries
    GOLDEN.write_text(json.dumps(golden_entries(), indent=2, sort_keys=True) + "\n")
    PY
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import WORKLOAD_NAMES, Experiment
from repro.analysis import AUTO_CANDIDATES, FAULT_CAPABLE_CANDIDATES
from repro.faults import FaultSpec
from repro.util import ConfigurationError, kib, mib

GOLDEN = Path(__file__).resolve().parents[1] / "fixtures" / "golden.auto.json"

#: the same small per-workload parameters the parity matrix runs
PARAMS: dict[str, dict] = {
    "ior": {"block_size": kib(256), "transfer_size": kib(32)},
    "ior-segmented": {"block_size": kib(256)},
    "coll_perf": {"array_edge": 16},
    "file-per-task": {"task_bytes": kib(32), "tasks_per_rank": 3,
                      "layout": "interleaved"},
    "nested-strided": {"block": kib(8), "inner_count": 3, "outer_count": 3,
                       "hole_factor": 2},
    "hotspot": {"total_bytes": mib(2), "hot_fraction": 0.65, "hot_ranks": 2},
}


def _experiment(workload: str, strategy: str = "auto") -> Experiment:
    return Experiment(
        machine="testbed-4",
        workload=workload,
        strategy=strategy,
        n_procs=8,
        procs_per_node=2,
        seed=3,
        cb_buffer=mib(1),
        workload_params=PARAMS[workload],
    )


def golden_entries() -> dict[str, dict]:
    """The fixture's content: per-workload pick and price vector."""
    entries: dict[str, dict] = {}
    for workload in WORKLOAD_NAMES:
        choice = _experiment(workload).auto_choice()
        entries[workload] = {
            "chosen": choice.chosen,
            "prices": {k: float(v) for k, v in sorted(choice.prices.items())},
        }
    return entries


def test_golden_covers_every_registered_workload():
    committed = json.loads(GOLDEN.read_text())
    assert set(committed) == set(WORKLOAD_NAMES)
    assert set(PARAMS) == set(WORKLOAD_NAMES)


def test_golden_matches_the_cost_model():
    committed = json.loads(GOLDEN.read_text())
    regenerated = json.loads(json.dumps(golden_entries()))
    assert committed == regenerated


def test_golden_picks_are_priced_cheapest():
    for workload, entry in json.loads(GOLDEN.read_text()).items():
        prices = entry["prices"]
        assert set(prices) == set(AUTO_CANDIDATES), workload
        assert prices[entry["chosen"]] == pytest.approx(
            min(prices.values()), rel=1e-9
        ), workload


class TestAutoExperiment:
    def test_auto_choice_requires_auto_strategy(self):
        with pytest.raises(ConfigurationError):
            _experiment("ior", strategy="mc").auto_choice()

    def test_spec_hash_equals_fixed_pick(self):
        exp = _experiment("ior")
        pick = exp.auto_choice().chosen
        assert exp.spec_hash() == _experiment("ior", strategy=pick).spec_hash()

    def test_run_annotates_pick_and_prices(self):
        exp = _experiment("coll_perf")
        choice = exp.auto_choice()
        res = exp.run()
        assert res.extras["auto_strategy"] == choice.chosen
        assert set(res.extras["auto_prices"]) == set(AUTO_CANDIDATES)
        counters = res.telemetry.counters
        assert counters[f"auto_pick_{choice.chosen}"] == 1
        for name, price in choice.prices.items():
            assert counters[f"auto_price_us_{name}"] == pytest.approx(
                price * 1e6
            )

    def test_faults_restrict_candidates_to_collectives(self):
        exp = _experiment("ior").replace(
            faults=FaultSpec(mem_pressure=1, seed=7)
        )
        choice = exp.auto_choice()
        assert set(choice.prices) == set(FAULT_CAPABLE_CANDIDATES)
        assert choice.chosen in FAULT_CAPABLE_CANDIDATES

    def test_plan_cache_support_follows_the_pick(self):
        for workload in WORKLOAD_NAMES:
            exp = _experiment(workload)
            assert exp.supports_plan_cache() == (
                exp.auto_choice().chosen == "mc"
            )

    def test_plan_carries_verifiable_provenance(self):
        from repro.analysis import verify_plan

        mc_picks = [
            w for w in WORKLOAD_NAMES
            if _experiment(w).auto_choice().chosen == "mc"
        ]
        assert mc_picks, "fixture matrix should contain at least one mc pick"
        plan = _experiment(mc_picks[0]).plan()
        data = plan.to_dict()
        assert data["auto"]["chosen"] == "mc"
        assert verify_plan(data).ok

    def test_pv117_flags_tampered_provenance(self):
        from repro.analysis import verify_plan

        mc_pick = next(
            w for w in WORKLOAD_NAMES
            if _experiment(w).auto_choice().chosen == "mc"
        )
        data = _experiment(mc_pick).plan().to_dict()

        not_cheapest = json.loads(json.dumps(data))
        not_cheapest["auto"]["prices"]["mc"] = 1e9
        assert not verify_plan(not_cheapest).ok

        # cheapest but not mc: PV117 rejects non-mc picks on a plan
        non_mc = json.loads(json.dumps(data))
        non_mc["auto"]["chosen"] = "two-phase"
        non_mc["auto"]["prices"]["two-phase"] = 0.0
        assert not verify_plan(non_mc).ok

        malformed = json.loads(json.dumps(data))
        malformed["auto"] = {"chosen": "mc"}
        assert not verify_plan(malformed).ok
