"""L310 determinism-taint rule against the committed fixture pair."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def fired(root: Path) -> set[str]:
    return {v.rule for v in lint_paths([root]).violations}


def violations(root: Path):
    return lint_paths([root]).violations


class TestL310Fixtures:
    def test_positive_fixture_fires_only_l310(self):
        assert fired(FIXTURES / "l310_pos") == {"L310"}

    def test_negative_fixture_is_clean(self):
        report = lint_paths([FIXTURES / "l310_neg"])
        assert report.ok, report.render()

    def test_taint_classes_are_distinguished(self):
        reasons = {
            v.detail.get("reason") for v in violations(FIXTURES / "l310_pos")
        }
        # unseeded constructor, wall-clock taint, an untracked value, and
        # module-global streams each get their own diagnosis.
        assert {"unseeded", "tainted", "untracked", "module-global"} <= reasons

    def test_taint_survives_assignment_and_arithmetic(self):
        # l310_pos/core/rng_use.py routes time.time() through an
        # intermediate variable plus arithmetic before seeding.
        lines = [v.line for v in violations(FIXTURES / "l310_pos")]
        assert len(lines) == len(set(lines)), "one finding per site"
        assert len(lines) >= 5


class TestL310TmpTrees:
    """Targeted cases written into a fake package layout."""

    @staticmethod
    def _lint(tmp_path: Path, rel: str, body: str):
        path = tmp_path / "pkg" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return lint_paths([tmp_path / "pkg"])

    def test_trusted_seed_through_int_coercion_of_taint(self, tmp_path):
        report = self._lint(
            tmp_path,
            "sim/clock.py",
            "import time\n"
            "import numpy as np\n"
            "def make(spec):\n"
            "    noisy = int(time.time())  # repro-lint: disable=L202\n"
            "    return np.random.default_rng(noisy)\n",
        )
        assert {v.rule for v in report.violations} == {"L310"}
        assert report.violations[0].detail["reason"] == "tainted"

    def test_seed_sequence_spawn_stays_trusted(self, tmp_path):
        report = self._lint(
            tmp_path,
            "faults/inject.py",
            "import numpy as np\n"
            "def make(seed, n):\n"
            "    seq = np.random.SeedSequence(seed)\n"
            "    kids = seq.spawn(n)\n"
            "    return [np.random.default_rng(k) for k in kids]\n",
        )
        assert report.ok, report.render()

    def test_blessed_factory_is_exempt(self, tmp_path):
        report = self._lint(
            tmp_path,
            "campaign/run.py",
            "from repro.util.rng import make_rng\n"
            "def go(spec):\n"
            "    return make_rng(spec.seed)\n",
        )
        assert report.ok, report.render()

    def test_outside_restricted_packages_silent(self, tmp_path):
        report = self._lint(
            tmp_path,
            "metrics/jitter.py",
            "import numpy as np\n"
            "def noise():\n"
            "    return np.random.default_rng()\n",
        )
        assert report.ok, report.render()

    def test_l201_suppression_comment_does_not_silence_l310(self, tmp_path):
        report = self._lint(
            tmp_path,
            "core/rng.py",
            "import numpy as np\n"
            "def make():\n"
            "    return np.random.default_rng()  # repro-lint: disable=L201\n",
        )
        assert {v.rule for v in report.violations} == {"L310"}
