"""Tests for the Table 1 projection model."""

from __future__ import annotations

import pytest

from repro.analysis import (
    DESIGN_2010,
    DESIGN_2018,
    memory_per_core_factor,
    projection_table,
)


class TestProjectionTable:
    def test_factors_match_paper(self):
        rows = projection_table()
        by_label = {r.label: r for r in rows}
        assert by_label["System Peak (Pf/s)"].factor == pytest.approx(500)
        assert by_label["System Memory (PB)"].factor == pytest.approx(33.3, rel=0.02)
        assert by_label["Node Concurrency (CPUs)"].factor == pytest.approx(83.3, rel=0.01)
        assert by_label["Total Concurrency"].factor == pytest.approx(4444, rel=0.01)
        assert by_label["I/O Bandwidth (TB/s)"].factor == pytest.approx(100)

    def test_every_row_close_to_paper_value(self):
        for row in projection_table():
            assert row.matches_paper, f"{row.label}: {row.factor} vs {row.paper_factor}"

    def test_row_count_matches_table1(self):
        assert len(projection_table()) == 11


class TestMemoryPerCore:
    def test_formula(self):
        # fm/(fs*fn) = 33.3 / (50 * 83.3) ~= 0.008
        factor = memory_per_core_factor()
        assert factor == pytest.approx(
            (10 / 0.3) / ((1e6 / 2e4) * (1000 / 12))
        )
        assert factor < 0.01  # two orders of magnitude shrink

    def test_absolute_memory_per_core(self):
        # 2010: ~1.3 GB/core; 2018: ~10 MB/core (paper: "drops to MBs").
        assert DESIGN_2010.memory_per_core_mb() > 1000
        assert DESIGN_2018.memory_per_core_mb() == pytest.approx(10.0)

    def test_projection_consistency(self):
        # Table 1 itself is slightly inconsistent: total concurrency is
        # listed as 225 K while nodes x node-concurrency = 240 K — so the
        # formula and the direct ratio agree only to ~7%.
        ratio = DESIGN_2018.memory_per_core_mb() / DESIGN_2010.memory_per_core_mb()
        assert ratio == pytest.approx(memory_per_core_factor(), rel=0.1)
