"""L320 unit-dimension rule against the committed fixture pair."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def fired(root: Path) -> set[str]:
    return {v.rule for v in lint_paths([root]).violations}


def violations(root: Path):
    return lint_paths([root]).violations


class TestL320Fixtures:
    def test_positive_fixture_fires_only_l320(self):
        assert fired(FIXTURES / "l320_pos") == {"L320"}

    def test_negative_fixture_is_clean(self):
        report = lint_paths([FIXTURES / "l320_neg"])
        assert report.ok, report.render()

    def test_every_positive_function_is_caught(self):
        # One finding per offending function in the fixture.
        assert len(violations(FIXTURES / "l320_pos")) >= 7


class TestL320TmpTrees:
    @staticmethod
    def _lint(tmp_path: Path, body: str, rel: str = "fs/layout.py"):
        path = tmp_path / "pkg" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        return lint_paths([tmp_path / "pkg"])

    def test_runs_outside_restricted_packages_too(self, tmp_path):
        # Unlike L300/L310, unit checking applies to every package.
        report = self._lint(
            tmp_path,
            "def f(a_bytes, b_s):\n    return a_bytes + b_s\n",
            rel="metrics/span.py",
        )
        assert {v.rule for v in report.violations} == {"L320"}

    def test_rate_times_seconds_is_bytes(self, tmp_path):
        report = self._lint(
            tmp_path,
            "def f(bw_per_s, window_s, cap_bytes):\n"
            "    moved_bytes = bw_per_s * window_s\n"
            "    return moved_bytes + cap_bytes\n",
        )
        assert report.ok, report.render()

    def test_bytes_over_seconds_is_rate(self, tmp_path):
        report = self._lint(
            tmp_path,
            "def f(n_bytes, dt_s, link_per_s):\n"
            "    measured = n_bytes / dt_s\n"
            "    return measured < link_per_s\n",
        )
        assert report.ok, report.render()

    def test_assignment_suffix_mismatch(self, tmp_path):
        report = self._lint(
            tmp_path,
            "def f(window_s):\n"
            "    total_bytes = window_s\n"
            "    return total_bytes\n",
        )
        assert {v.rule for v in report.violations} == {"L320"}

    def test_augmented_assign_mix(self, tmp_path):
        report = self._lint(
            tmp_path,
            "def f(acc_bytes, lat_us):\n"
            "    acc_bytes += lat_us\n"
            "    return acc_bytes\n",
        )
        assert {v.rule for v in report.violations} == {"L320"}

    def test_module_level_statements_are_checked(self, tmp_path):
        report = self._lint(
            tmp_path,
            "LIMIT_BYTES = 10\nWINDOW_S = 2\nslack = LIMIT_BYTES - WINDOW_S\n",
        )
        assert {v.rule for v in report.violations} == {"L320"}

    def test_inline_suppression(self, tmp_path):
        report = self._lint(
            tmp_path,
            "def f(a_bytes, n_ranks):\n"
            "    return a_bytes < n_ranks  # repro-lint: disable=L320\n",
        )
        assert report.ok, report.render()
