"""L300/L301/L302 concurrency rules against the committed fixture pairs."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import lint_paths

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def fired(root: Path) -> set[str]:
    return {v.rule for v in lint_paths([root]).violations}


def violations(root: Path):
    return lint_paths([root]).violations


class TestL300AsyncBlocking:
    def test_positive_fixture_fires_only_l300(self):
        assert fired(FIXTURES / "l300_pos") == {"L300"}

    def test_negative_fixture_is_clean(self):
        report = lint_paths([FIXTURES / "l300_neg"])
        assert report.ok, report.render()

    def test_each_blocking_shape_is_caught(self):
        msgs = "\n".join(v.message for v in violations(FIXTURES / "l300_pos"))
        assert "time.sleep" in msgs
        # chained submit(...).result() and the tracked-future variant
        assert msgs.count("result") >= 2
        # sync HTTP round-trip methods
        assert "request" in msgs or "getresponse" in msgs
        assert "open" in msgs

    def test_findings_carry_locations(self):
        for v in violations(FIXTURES / "l300_pos"):
            assert v.file.endswith("handlers.py")
            assert v.line > 0


class TestL301SharedState:
    def test_positive_fixture_fires_only_l301(self):
        assert fired(FIXTURES / "l301_pos") == {"L301"}

    def test_negative_fixture_is_clean(self):
        report = lint_paths([FIXTURES / "l301_neg"])
        assert report.ok, report.render()

    def test_covers_rebind_mutation_and_delete(self):
        msgs = [v.message for v in violations(FIXTURES / "l301_pos")]
        assert len(msgs) >= 4  # item assign, .append, global rebind, del


class TestL302LockOrder:
    def test_positive_fixture_fires_only_l302(self):
        assert fired(FIXTURES / "l302_pos") == {"L302"}

    def test_negative_fixture_is_clean(self):
        report = lint_paths([FIXTURES / "l302_neg"])
        assert report.ok, report.render()

    def test_descending_shard_acquire_is_flagged(self):
        lines = {v.line: v.message for v in violations(FIXTURES / "l302_pos")}
        assert any("while holding" in m or "held" in m for m in lines.values())
