"""Determinism/unit lint: the shipped tree is clean, seeded sins fire.

Fixture snippets are written into a fake package layout under tmp_path
(``core/`` counts as a deterministic package, ``metrics/`` does not) so
the restricted-package gating is exercised, not just the AST matching.
The flow-sensitive families (L300/L310/L320) have their own dedicated
test modules; this one covers the front end — scoping, suppressions,
selection — and the per-node L20x rules.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import LINT_RULES, RESTRICTED_PACKAGES, lint_file, lint_paths

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "pkg"
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
    return root


def rules_fired(report) -> set[str]:
    return {v.rule for v in report.violations}


def test_shipped_tree_is_clean():
    report = lint_paths([REPO_SRC])
    assert report.ok, report.render()
    assert report.violations == []


def test_syntax_error_is_l200(tmp_path):
    root = write_tree(tmp_path, {"core/bad.py": "def broken(:\n"})
    assert rules_fired(lint_paths([root])) == {"L200"}


def test_unseeded_random_in_core_is_l310(tmp_path):
    # The historical L201 cases now fire as L310 (taint analysis).
    root = write_tree(tmp_path, {
        "core/a.py": "import random\nx = random.random()\n",
        "core/b.py": "import numpy as np\nnp.random.shuffle([1])\n",
        "core/c.py": "import random\nrng = random.Random()\n",
    })
    report = lint_paths([root])
    assert rules_fired(report) == {"L310"}
    assert len(report.violations) == 3


def test_seeded_rng_is_allowed(tmp_path):
    root = write_tree(tmp_path, {
        "core/ok.py": (
            "import random\nimport numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "ss = np.random.SeedSequence(7)\n"
            "r = random.Random(7)\n"
        ),
    })
    assert lint_paths([root]).ok


def test_rng_outside_restricted_packages_is_allowed(tmp_path):
    # metrics/ is not in the deterministic set (campaign now is).
    root = write_tree(tmp_path, {
        "metrics/jitter.py": "import random\nx = random.random()\n",
    })
    assert lint_paths([root]).ok


def test_campaign_and_serve_joined_restricted_set():
    assert {"serve", "client", "campaign", "cluster"} <= RESTRICTED_PACKAGES
    assert {"core", "io", "sim", "faults"} <= RESTRICTED_PACKAGES


def test_wallclock_in_campaign_is_l202(tmp_path):
    # Scope extension: campaign joined the deterministic set.
    root = write_tree(tmp_path, {
        "campaign/clock.py": "import time\nt = time.time()\n",
    })
    assert rules_fired(lint_paths([root])) == {"L202"}


def test_top_level_client_module_is_restricted(tmp_path):
    # client is a top-level module (client.py), matched by stem.
    root = write_tree(tmp_path, {
        "client.py": "import time\nt = time.time()\n",
    })
    assert rules_fired(lint_paths([root])) == {"L202"}


def test_wallclock_in_sim_is_l202(tmp_path):
    root = write_tree(tmp_path, {
        "sim/clock.py": (
            "import time\nfrom datetime import datetime\n"
            "t = time.time()\n"
            "n = datetime.now()\n"
        ),
    })
    report = lint_paths([root])
    assert rules_fired(report) == {"L202"}
    assert len(report.violations) == 2


def test_perf_counter_is_not_wallclock(tmp_path):
    root = write_tree(tmp_path, {
        "io/timer.py": "import time\nt = time.perf_counter()\n",
    })
    assert lint_paths([root]).ok


def test_unit_mixing_is_l320(tmp_path):
    # The historical L203 cases now fire as L320 (dimension lattice).
    root = write_tree(tmp_path, {
        "util/mix.py": (
            "def f(cap_mib, used_bytes):\n"
            "    return cap_mib - used_bytes\n"
        ),
        "util/cmp.py": (
            "def g(cap_mib, used_bytes):\n"
            "    return cap_mib < used_bytes\n"
        ),
        "util/conv.py": (
            "from repro.util import mib\n"
            "def h(n_bytes):\n"
            "    return mib(n_bytes)\n"
        ),
        "util/assign.py": (
            "from repro.util import mib\n"
            "budget_mib = mib(16)\n"
        ),
    })
    report = lint_paths([root])
    assert rules_fired(report) == {"L320"}
    assert len(report.violations) == 4


def test_same_unit_arithmetic_is_allowed(tmp_path):
    root = write_tree(tmp_path, {
        "util/ok.py": (
            "def f(a_bytes, b_bytes, c_mib, d_mib):\n"
            "    return (a_bytes + b_bytes, c_mib - d_mib)\n"
        ),
    })
    assert lint_paths([root]).ok


def test_frozen_mutation_outside_post_init_is_l204(tmp_path):
    root = write_tree(tmp_path, {
        "faults/spec.py": (
            "class Spec:\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'n', 1)\n"  # allowed
            "    def clamp(self):\n"
            "        object.__setattr__(self, 'n', 2)\n"  # L204
        ),
    })
    report = lint_paths([root])
    assert rules_fired(report) == {"L204"}
    assert len(report.violations) == 1
    assert report.violations[0].line == 5


def test_unbounded_sim_run_is_l205(tmp_path):
    root = write_tree(tmp_path, {
        "faults/drv.py": (
            "def go(sim, horizon):\n"
            "    sim.run()\n"  # L205
            "    sim.run(until=horizon)\n"  # bounded, fine
            "    sim.run(horizon)\n"  # positional bound, fine
        ),
        "io/drv.py": (
            "class R:\n"
            "    def go(self, horizon):\n"
            "        self.sim.run()\n"  # L205 via attribute receiver
        ),
    })
    report = lint_paths([root])
    assert rules_fired(report) == {"L205"}
    assert len(report.violations) == 2


def test_suppression_comment_disables_rule(tmp_path):
    root = write_tree(tmp_path, {
        "core/sup.py": (
            "import random\n"
            "x = random.random()  # repro-lint: disable=L310\n"
            "y = random.random()  # repro-lint: disable=all\n"
            "z = random.random()  # repro-lint: disable=L202\n"  # wrong code
        ),
    })
    report = lint_paths([root])
    assert len(report.violations) == 1
    assert report.violations[0].line == 4


def test_suppression_family_wildcard(tmp_path):
    # L3xx silences the whole flow family but not the L20x rules.
    root = write_tree(tmp_path, {
        "core/wild.py": (
            "import random, time\n"
            "x = random.random()  # repro-lint: disable=L3xx\n"
            "t = time.time()  # repro-lint: disable=L3xx\n"  # L202 stays
        ),
    })
    report = lint_paths([root])
    assert rules_fired(report) == {"L202"}
    assert len(report.violations) == 1


def test_suppression_mixed_old_and_new_on_one_line(tmp_path):
    # Comma list combining an L20x code and an L3xx wildcard.
    root = write_tree(tmp_path, {
        "core/both.py": (
            "import random, time\n"
            "x = random.random() + time.time()"
            "  # repro-lint: disable=L202,L3xx\n"
        ),
        "core/partial.py": (
            "import random, time\n"
            "y = random.random() + time.time()"
            "  # repro-lint: disable=L202,L999\n"  # L310 not covered
        ),
    })
    report = lint_paths([root])
    assert rules_fired(report) == {"L310"}
    assert [v.file for v in report.violations] == ["core/partial.py"]


def test_rule_selection_filters(tmp_path):
    root = write_tree(tmp_path, {
        "core/two.py": (
            "import random, time\n"
            "x = random.random()\n"
            "t = time.time()\n"
        ),
    })
    report = lint_paths([root], rules=["L202"])
    assert rules_fired(report) == {"L202"}


def test_lint_file_single_path(tmp_path):
    path = tmp_path / "solo.py"
    path.write_text("import random\nx = random.random()\n")
    # a bare file is not inside a restricted package dir -> clean
    assert lint_file(path) == []


def test_every_rule_documented():
    assert set(LINT_RULES) == {
        "L200", "L201", "L202", "L203", "L204", "L205",
        "L300", "L301", "L302", "L310", "L320",
    }
    for code in ("L201", "L203"):
        assert "deprecated" in LINT_RULES[code]
