"""Determinism/unit lint: the shipped tree is clean, seeded sins fire.

Fixture snippets are written into a fake package layout under tmp_path
(``core/`` counts as a deterministic package, ``campaign/`` does not) so
the restricted-package gating is exercised, not just the AST matching.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import LINT_RULES, lint_file, lint_paths

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "pkg"
    for rel, body in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
    return root


def rules_fired(report) -> set[str]:
    return {v.rule for v in report.violations}


def test_shipped_tree_is_clean():
    report = lint_paths([REPO_SRC])
    assert report.ok, report.render()
    assert report.violations == []


def test_syntax_error_is_l200(tmp_path):
    root = write_tree(tmp_path, {"core/bad.py": "def broken(:\n"})
    assert rules_fired(lint_paths([root])) == {"L200"}


def test_unseeded_random_in_core_is_l201(tmp_path):
    root = write_tree(tmp_path, {
        "core/a.py": "import random\nx = random.random()\n",
        "core/b.py": "import numpy as np\nnp.random.shuffle([1])\n",
        "core/c.py": "import random\nrng = random.Random()\n",
    })
    report = lint_paths([root])
    assert rules_fired(report) == {"L201"}
    assert len(report.violations) == 3


def test_seeded_rng_is_allowed(tmp_path):
    root = write_tree(tmp_path, {
        "core/ok.py": (
            "import random\nimport numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "ss = np.random.SeedSequence(7)\n"
            "r = random.Random(7)\n"
        ),
    })
    assert lint_paths([root]).ok


def test_rng_outside_restricted_packages_is_allowed(tmp_path):
    root = write_tree(tmp_path, {
        "campaign/jitter.py": "import random\nx = random.random()\n",
    })
    assert lint_paths([root]).ok


def test_wallclock_in_sim_is_l202(tmp_path):
    root = write_tree(tmp_path, {
        "sim/clock.py": (
            "import time\nfrom datetime import datetime\n"
            "t = time.time()\n"
            "n = datetime.now()\n"
        ),
    })
    report = lint_paths([root])
    assert rules_fired(report) == {"L202"}
    assert len(report.violations) == 2


def test_perf_counter_is_not_wallclock(tmp_path):
    root = write_tree(tmp_path, {
        "io/timer.py": "import time\nt = time.perf_counter()\n",
    })
    assert lint_paths([root]).ok


def test_unit_mixing_is_l203(tmp_path):
    root = write_tree(tmp_path, {
        "util/mix.py": (
            "def f(cap_mib, used_bytes):\n"
            "    return cap_mib - used_bytes\n"
        ),
        "util/cmp.py": (
            "def g(cap_mib, used_bytes):\n"
            "    return cap_mib < used_bytes\n"
        ),
        "util/conv.py": (
            "from repro.util import mib\n"
            "def h(n_bytes):\n"
            "    return mib(n_bytes)\n"
        ),
        "util/assign.py": (
            "from repro.util import mib\n"
            "budget_mib = mib(16)\n"
        ),
    })
    report = lint_paths([root])
    assert rules_fired(report) == {"L203"}
    assert len(report.violations) == 4


def test_same_unit_arithmetic_is_allowed(tmp_path):
    root = write_tree(tmp_path, {
        "util/ok.py": (
            "def f(a_bytes, b_bytes, c_mib, d_mib):\n"
            "    return (a_bytes + b_bytes, c_mib - d_mib)\n"
        ),
    })
    assert lint_paths([root]).ok


def test_frozen_mutation_outside_post_init_is_l204(tmp_path):
    root = write_tree(tmp_path, {
        "faults/spec.py": (
            "class Spec:\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'n', 1)\n"  # allowed
            "    def clamp(self):\n"
            "        object.__setattr__(self, 'n', 2)\n"  # L204
        ),
    })
    report = lint_paths([root])
    assert rules_fired(report) == {"L204"}
    assert len(report.violations) == 1
    assert report.violations[0].line == 5


def test_unbounded_sim_run_is_l205(tmp_path):
    root = write_tree(tmp_path, {
        "faults/drv.py": (
            "def go(sim, horizon):\n"
            "    sim.run()\n"  # L205
            "    sim.run(until=horizon)\n"  # bounded, fine
            "    sim.run(horizon)\n"  # positional bound, fine
        ),
        "io/drv.py": (
            "class R:\n"
            "    def go(self, horizon):\n"
            "        self.sim.run()\n"  # L205 via attribute receiver
        ),
    })
    report = lint_paths([root])
    assert rules_fired(report) == {"L205"}
    assert len(report.violations) == 2


def test_suppression_comment_disables_rule(tmp_path):
    root = write_tree(tmp_path, {
        "core/sup.py": (
            "import random\n"
            "x = random.random()  # repro-lint: disable=L201\n"
            "y = random.random()  # repro-lint: disable=all\n"
            "z = random.random()  # repro-lint: disable=L202\n"  # wrong code
        ),
    })
    report = lint_paths([root])
    assert len(report.violations) == 1
    assert report.violations[0].line == 4


def test_rule_selection_filters(tmp_path):
    root = write_tree(tmp_path, {
        "core/two.py": (
            "import random, time\n"
            "x = random.random()\n"
            "t = time.time()\n"
        ),
    })
    report = lint_paths([root], rules=["L202"])
    assert rules_fired(report) == {"L202"}


def test_lint_file_single_path(tmp_path):
    path = tmp_path / "solo.py"
    path.write_text("import random\nx = random.random()\n")
    # a bare file is not inside a restricted package dir -> clean
    assert lint_file(path) == []


def test_every_rule_documented():
    assert set(LINT_RULES) == {"L200", "L201", "L202", "L203", "L204", "L205"}
