"""CFG construction and the dataflow framework underneath the L3xx rules."""

from __future__ import annotations

import ast

from repro.analysis.cfg import CondTest, LoopIter, WithEnter, WithExit, build_cfg
from repro.analysis.flow import (
    ModuleContext,
    collect_functions,
    fixpoint,
    iter_calls,
    module_unit,
)


def first_func(source: str):
    tree = ast.parse(source)
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return func


def all_items(cfg):
    return [item for block in cfg.blocks for item in block.items]


class TestBuildCfg:
    def test_straight_line_single_block(self):
        cfg = build_cfg(first_func("def f(x):\n    y = x\n    return y\n"))
        order = cfg.reverse_postorder()
        assert order[0] == cfg.entry_id
        # both statements land in the entry block; return terminates,
        # so the block has no successors
        assert len(cfg.blocks[cfg.entry_id].items) == 2
        assert cfg.blocks[cfg.entry_id].succs == []

    def test_fallthrough_reaches_exit(self):
        cfg = build_cfg(first_func("def f(x):\n    y = x\n"))
        assert cfg.exit_id in cfg.reverse_postorder()

    def test_if_produces_branch_and_join(self):
        cfg = build_cfg(first_func(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        ))
        entry = cfg.blocks[cfg.entry_id]
        assert isinstance(entry.items[-1], CondTest)
        assert len(entry.succs) == 2  # then + else

    def test_while_has_back_edge(self):
        cfg = build_cfg(first_func(
            "def f(n):\n"
            "    while n:\n"
            "        n -= 1\n"
            "    return n\n"
        ))
        headers = [
            b.id for b in cfg.blocks
            if any(isinstance(i, CondTest) for i in b.items)
        ]
        assert len(headers) == 1
        header = headers[0]
        back_edges = [
            b.id for b in cfg.blocks if header in b.succs and b.id > header
        ]
        assert back_edges, "loop body must edge back to the header"

    def test_for_header_carries_loop_iter(self):
        cfg = build_cfg(first_func(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        print(x)\n"
        ))
        iters = [i for i in all_items(cfg) if isinstance(i, LoopIter)]
        assert len(iters) == 1
        assert isinstance(iters[0].target, ast.Name)

    def test_with_brackets_body(self):
        cfg = build_cfg(first_func(
            "def f(lock):\n"
            "    with lock:\n"
            "        x = 1\n"
            "    return x\n"
        ))
        items = all_items(cfg)
        enters = [i for i in items if isinstance(i, WithEnter)]
        exits = [i for i in items if isinstance(i, WithExit)]
        assert len(enters) == 1 and len(exits) == 1
        # the body statement sits between enter and exit in block order
        flat = [type(i).__name__ for i in items]
        assert flat.index("WithEnter") < flat.index("WithExit")

    def test_try_body_edges_to_handler(self):
        cfg = build_cfg(first_func(
            "def f():\n"
            "    try:\n"
            "        risky()\n"
            "    except ValueError:\n"
            "        fallback()\n"
        ))
        # the block holding risky() must have >= 2 successors
        # (handler + fall-through)
        for block in cfg.blocks:
            for item in block.items:
                if isinstance(item, ast.Expr):
                    call = item.value
                    if (
                        isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Name)
                        and call.func.id == "risky"
                    ):
                        assert len(block.succs) >= 2
                        return
        raise AssertionError("risky() statement not found")

    def test_break_exits_loop(self):
        cfg = build_cfg(first_func(
            "def f(xs):\n"
            "    for x in xs:\n"
            "        if x:\n"
            "            break\n"
            "    return 1\n"
        ))
        # the break block must jump straight to the block holding the
        # post-loop return, bypassing the loop header
        break_block = next(
            b for b in cfg.blocks
            if any(isinstance(i, ast.Break) for i in b.items)
        )
        return_block = next(
            b for b in cfg.blocks
            if any(isinstance(i, ast.Return) for i in b.items)
        )
        assert break_block.succs == [return_block.id]
        assert return_block.id in cfg.reverse_postorder()


class TestFixpoint:
    def test_reaches_fixpoint_on_loop(self):
        # Collect the set of assigned names; the loop must terminate.
        cfg = build_cfg(first_func(
            "def f(n):\n"
            "    x = 0\n"
            "    while n:\n"
            "        y = x\n"
            "        n -= 1\n"
        ))

        def transfer(state: frozenset, item) -> frozenset:
            if isinstance(item, ast.Assign):
                names = {
                    t.id for t in item.targets if isinstance(t, ast.Name)
                }
                return state | frozenset(names)
            return state

        states = fixpoint(cfg, frozenset(), transfer, lambda a, b: a | b)
        assert states[cfg.exit_id] >= {"x", "y"}

    def test_branch_join_is_union(self):
        cfg = build_cfg(first_func(
            "def f(c):\n"
            "    if c:\n"
            "        a = 1\n"
            "    else:\n"
            "        b = 2\n"
        ))

        def transfer(state: frozenset, item) -> frozenset:
            if isinstance(item, ast.Assign):
                return state | frozenset(
                    t.id for t in item.targets if isinstance(t, ast.Name)
                )
            return state

        states = fixpoint(cfg, frozenset(), transfer, lambda a, b: a | b)
        assert states[cfg.exit_id] == {"a", "b"}


class TestModuleContext:
    def test_import_alias_resolution(self):
        tree = ast.parse(
            "import time as t\n"
            "import numpy as np\n"
            "from http import client\n"
        )
        ctx = ModuleContext.from_tree(tree, "serve/daemon.py")
        assert ctx.package == "serve"
        assert ctx.qualified(ast.parse("t.sleep").body[0].value) == "time.sleep"
        assert (
            ctx.qualified(ast.parse("np.random.default_rng").body[0].value)
            == "numpy.random.default_rng"
        )
        assert (
            ctx.qualified(ast.parse("client.HTTPConnection").body[0].value)
            == "http.client.HTTPConnection"
        )

    def test_top_level_module_package_is_stem(self):
        ctx = ModuleContext.from_tree(ast.parse("x = 1\n"), "client.py")
        assert ctx.package == "client"

    def test_constants_and_mutable_globals(self):
        tree = ast.parse(
            "SEED = 7\n"
            "_CACHE = {}\n"
            "_ITEMS = list()\n"
            "name = 'x'\n"
        )
        ctx = ModuleContext.from_tree(tree, "campaign/state.py")
        assert "SEED" in ctx.constants
        assert set(ctx.mutable_globals) == {"_CACHE", "_ITEMS"}


class TestCollection:
    def test_collect_functions_nested_and_methods(self):
        tree = ast.parse(
            "def outer():\n"
            "    def inner():\n"
            "        pass\n"
            "class C:\n"
            "    def method(self):\n"
            "        pass\n"
            "    async def amethod(self):\n"
            "        pass\n"
        )
        units = {u.qualname: u for u in collect_functions(tree)}
        assert set(units) == {"outer", "outer.inner", "C.method", "C.amethod"}
        assert units["C.method"].is_method
        assert units["C.amethod"].is_async
        assert not units["outer.inner"].is_method

    def test_module_unit_excludes_defs(self):
        tree = ast.parse(
            "x = 1\n"
            "def f():\n"
            "    pass\n"
            "y = 2\n"
        )
        unit = module_unit(tree)
        assert unit.qualname == "<module>"
        assert len(unit.node.body) == 2

    def test_iter_calls_prunes_nested_defs(self):
        stmt = ast.parse(
            "def f():\n"
            "    top()\n"
            "    def g():\n"
            "        nested()\n"
        ).body[0]
        names = {
            c.func.id
            for c in iter_calls(stmt)
            if isinstance(c.func, ast.Name)
        }
        assert names == {"top"}
