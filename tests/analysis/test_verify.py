"""Static plan verifier: clean plans verify, seeded violations fire.

Every rule gets a fixture plan that must fail with exactly that rule,
plus the shipped planner's real output which must verify clean — the
verifier's two contractual directions.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import verify_cache_dir, verify_plan, verify_plan_file
from repro.api import Experiment
from repro.core.plans import PLAN_FORMAT_VERSION, plan_to_dict

MIB = 1 << 20


def make_plan(**overrides) -> dict:
    """A minimal hand-built plan that satisfies every invariant.

    Two groups tiling [0, 4 MiB), one single-leaf domain each, buffers
    exactly Mem_min. Tests mutate copies of this to seed violations.
    """
    plan = {
        "version": PLAN_FORMAT_VERSION,
        "domains": [
            {
                "region": [0, 2 * MIB],
                "coverage": [[0, 2 * MIB]],
                "aggregator": 0,
                "buffer_bytes": MIB,
                "group_id": 0,
                "n_leaves": 1,
                "remerged": False,
            },
            {
                "region": [2 * MIB, 2 * MIB],
                "coverage": [[2 * MIB, 2 * MIB]],
                "aggregator": 4,
                "buffer_bytes": MIB,
                "group_id": 1,
                "n_leaves": 1,
                "remerged": False,
            },
        ],
        "stats": {"n_domains": 2, "n_remerges": 0, "n_fallbacks": 0,
                  "n_rebalanced": 0},
        "group_sizes": {"0": 4, "1": 4},
        "config": {"msg_ind": 2 * MIB, "mem_min": MIB},
        "spec_hash": "abc123",
    }
    plan.update(overrides)
    return plan


def rules_fired(report) -> set[str]:
    return {v.rule for v in report.violations}


def test_hand_built_plan_is_clean():
    report = verify_plan(make_plan())
    assert report.ok, report.render()
    assert report.violations == []


def test_real_planner_output_is_clean():
    exp = Experiment(n_procs=24, procs_per_node=4, seed=11)
    plan = exp.plan()
    extents = [(e.offset, e.length) for r in exp.requests() for e in r.extents]
    report = verify_plan(
        plan, expected_spec_hash=exp.spec_hash(), workload_extents=extents
    )
    assert report.ok, report.render()


def test_non_mapping_plan_is_pv100():
    assert rules_fired(verify_plan(["not", "a", "plan"])) == {"PV100"}


def test_stale_version_is_pv101():
    report = verify_plan(make_plan(version=1))
    assert "PV101" in rules_fired(report)
    assert not report.ok


def test_malformed_domain_is_pv102():
    plan = make_plan()
    del plan["domains"][0]["region"]
    assert "PV102" in rules_fired(verify_plan(plan))
    plan = make_plan()
    plan["domains"][0]["aggregator"] = "zero"
    assert "PV102" in rules_fired(verify_plan(plan))
    plan = make_plan()
    plan["domains"][0]["n_leaves"] = 0
    assert "PV102" in rules_fired(verify_plan(plan))
    assert "PV102" in rules_fired(verify_plan(make_plan(domains=[])))


def test_coverage_escaping_region_is_pv103():
    plan = make_plan()
    # second extent pokes past the domain's region end
    plan["domains"][0]["coverage"] = [[0, MIB], [2 * MIB - MIB // 2, MIB]]
    report = verify_plan(plan)
    assert "PV103" in rules_fired(report)


def test_unsorted_or_overlapping_extents_are_pv104():
    plan = make_plan()
    plan["domains"][0]["coverage"] = [[MIB, MIB], [0, MIB]]
    assert "PV104" in rules_fired(verify_plan(plan))
    plan = make_plan()
    plan["domains"][0]["coverage"] = []
    assert "PV104" in rules_fired(verify_plan(plan))


def test_cross_domain_overlap_is_pv105():
    plan = make_plan()
    # domain 1 reaches one MiB into domain 0's bytes
    plan["domains"][1]["region"] = [MIB, 3 * MIB]
    plan["domains"][1]["coverage"] = [[MIB, 3 * MIB]]
    report = verify_plan(plan)
    assert "PV105" in rules_fired(report)


def test_group_straddle_is_pv106():
    plan = make_plan()
    # group 1's domain sits inside group 0's envelope: a straddle even
    # though the two domains' bytes stay disjoint
    plan["domains"][0]["coverage"] = [[0, MIB], [3 * MIB, MIB]]
    plan["domains"][0]["region"] = [0, 4 * MIB]
    plan["domains"][1]["region"] = [MIB, 2 * MIB]
    plan["domains"][1]["coverage"] = [[MIB, 2 * MIB]]
    report = verify_plan(plan)
    assert "PV106" in rules_fired(report)
    assert "PV105" not in rules_fired(report)


def test_multi_group_domains_are_exempt_from_pv106():
    plan = make_plan()
    plan["domains"][0]["group_id"] = -1
    plan["domains"][0]["coverage"] = [[0, MIB], [3 * MIB, MIB]]
    plan["domains"][0]["region"] = [0, 4 * MIB]
    plan["domains"][1]["region"] = [MIB, 2 * MIB]
    plan["domains"][1]["coverage"] = [[MIB, 2 * MIB]]
    assert "PV106" not in rules_fired(verify_plan(plan))


def test_oversized_leaf_is_pv107():
    plan = make_plan()
    plan["config"]["msg_ind"] = MIB  # each domain covers 2 MiB on 1 leaf
    report = verify_plan(plan)
    assert "PV107" in rules_fired(report)


def test_remerged_domains_may_exceed_msg_ind():
    plan = make_plan()
    plan["config"]["msg_ind"] = MIB
    for dom in plan["domains"]:
        dom["remerged"] = True
    plan["stats"]["n_remerges"] = 2
    assert "PV107" not in rules_fired(verify_plan(plan))


def test_buffer_below_mem_min_is_pv108():
    plan = make_plan()
    plan["domains"][0]["buffer_bytes"] = MIB // 4
    report = verify_plan(plan)
    assert "PV108" in rules_fired(report)


def test_small_domains_cap_mem_min_at_covered_bytes():
    plan = make_plan()
    # half-MiB domain with a half-MiB buffer: fine despite Mem_min=1MiB
    plan["domains"][1]["region"] = [2 * MIB, MIB // 2]
    plan["domains"][1]["coverage"] = [[2 * MIB, MIB // 2]]
    plan["domains"][1]["buffer_bytes"] = MIB // 2
    assert "PV108" not in rules_fired(verify_plan(plan))


def test_buffer_exceeding_coverage_is_pv109():
    plan = make_plan()
    plan["domains"][0]["buffer_bytes"] = 3 * MIB
    assert "PV109" in rules_fired(verify_plan(plan))


def test_byte_conservation_is_pv110():
    # missing bytes: workload wants more than the domains cover
    report = verify_plan(make_plan(), workload_extents=[(0, 5 * MIB)])
    assert "PV110" in rules_fired(report)
    # extra bytes: domains cover bytes the workload never asked for
    report = verify_plan(make_plan(), workload_extents=[(0, 3 * MIB)])
    assert "PV110" in rules_fired(report)
    # exact match: clean
    report = verify_plan(make_plan(), workload_extents=[(0, 4 * MIB)])
    assert "PV110" not in rules_fired(report)


def test_spec_hash_mismatch_is_pv111():
    report = verify_plan(make_plan(), expected_spec_hash="something-else")
    assert "PV111" in rules_fired(report)
    # unstamped plans (hash "") are not checkable — no violation
    report = verify_plan(make_plan(spec_hash=""), expected_spec_hash="x")
    assert "PV111" not in rules_fired(report)


def test_stats_disagreement_is_pv112_warning():
    plan = make_plan()
    plan["stats"]["n_domains"] = 7
    report = verify_plan(plan)
    assert "PV112" in rules_fired(report)
    # warnings do not fail the report
    assert report.ok


def test_report_serializes(tmp_path):
    report = verify_plan(make_plan(version=1))
    data = report.to_dict()
    assert data["ok"] is False
    assert data["violations"][0]["rule"] == "PV101"
    assert "PV101" in report.render()


def test_verify_plan_file_unreadable_is_pv100(tmp_path):
    missing = tmp_path / "nope.plan.json"
    assert rules_fired(verify_plan_file(missing)) == {"PV100"}
    garbled = tmp_path / "bad.plan.json"
    garbled.write_text("not json{")
    assert rules_fired(verify_plan_file(garbled)) == {"PV100"}


def test_verify_cache_dir_checks_key_identity(tmp_path):
    good = make_plan()
    (tmp_path / "abc123.plan.json").write_text(json.dumps(good))
    (tmp_path / "wrongkey.plan.json").write_text(json.dumps(good))
    reports = {r.subject: r for r in verify_cache_dir(tmp_path)}
    assert len(reports) == 2
    good_report = reports[str(tmp_path / "abc123.plan.json")]
    bad_report = reports[str(tmp_path / "wrongkey.plan.json")]
    assert good_report.ok, good_report.render()
    assert "PV111" in rules_fired(bad_report)


@pytest.mark.parametrize("mutation,rule", [
    (lambda p: p["domains"][0].update(buffer_bytes=1000 * MIB), "PV109"),
    (lambda p: p.update(version=999), "PV101"),
])
def test_collective_plan_objects_accepted(mutation, rule):
    """verify_plan accepts CollectivePlan instances, not just dicts."""
    exp = Experiment(n_procs=24, procs_per_node=4, seed=11)
    plan = exp.plan()
    data = plan_to_dict(plan)
    mutation(data)
    assert rule in rules_fired(verify_plan(data))


def test_verify_cache_dir_sharded_layout_with_purge(tmp_path):
    """ShardedPlanCache layouts verify per shard; poisoned entries purge.

    One poisoned entry per shard must be reported with its shard-XX/
    prefix and deleted by purge=True, while the good entry in the same
    shard survives untouched.
    """
    from repro.serve import ShardedPlanCache

    cache = ShardedPlanCache(tmp_path, shards=3)
    per_shard: dict[int, list[str]] = {0: [], 1: [], 2: []}
    n = 0
    while any(len(keys) < 2 for keys in per_shard.values()):
        key = f"{n:08x}"
        index = cache.shard_index(key)
        if len(per_shard[index]) < 2:
            cache.put(key, make_plan(spec_hash=key))
            per_shard[index].append(key)
        n += 1

    def entry(index: int, key: str):
        return tmp_path / f"shard-{index:02x}" / f"{key}.plan.json"

    for index, keys in per_shard.items():
        entry(index, keys[0]).write_text("not json{")

    reports = verify_cache_dir(tmp_path, purge=True)
    assert len(reports) == 6
    bad = [r for r in reports if not r.ok]
    assert len(bad) == 3
    bad_shards = set()
    for report in bad:
        assert "[PURGED]" in report.subject
        assert report.subject.startswith("shard-")
        bad_shards.add(report.subject.split("/", 1)[0])
    assert bad_shards == {"shard-00", "shard-01", "shard-02"}
    for index, keys in per_shard.items():
        assert not entry(index, keys[0]).exists()  # poisoned -> purged
        assert entry(index, keys[1]).exists()  # good entry untouched


def test_verify_cache_dir_without_purge_keeps_entries(tmp_path):
    (tmp_path / "shard-00").mkdir()
    poisoned = tmp_path / "shard-00" / "deadbeef.plan.json"
    poisoned.write_text("not json{")
    reports = verify_cache_dir(tmp_path)
    assert len(reports) == 1
    assert not reports[0].ok
    assert "PURGED" not in reports[0].subject
    assert poisoned.exists()
