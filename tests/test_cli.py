"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestProject:
    def test_prints_table1(self, capsys):
        assert main(["project"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Total Concurrency" in out
        assert "memory per core" in out


class TestTune:
    def test_prints_parameters(self, capsys):
        assert main(["tune", "--machine", "testbed-4"]) == 0
        out = capsys.readouterr().out
        assert "Nah" in out
        assert "Msg_group" in out

    def test_verbose_curves(self, capsys):
        assert main(["tune", "--machine", "testbed-4", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "node sweep" in out
        assert "system sweep" in out

    def test_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["tune", "--machine", "cray-1"])


class TestRun:
    def test_mc_run_summary(self, capsys):
        code = main(
            [
                "run", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--block-mib", "1",
                "--transfer-mib", "1", "--memory-mib", "1",
                "--strategy", "mc",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "memory-conscious write" in out
        assert "MiB/s" in out or "GiB/s" in out

    def test_trace_output(self, capsys):
        main(
            [
                "run", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--block-mib", "1",
                "--transfer-mib", "1", "--strategy", "two-phase", "--trace",
            ]
        )
        out = capsys.readouterr().out
        assert "request_exchange" in out
        assert "transfer" in out

    @pytest.mark.parametrize("strategy", ["independent", "sieving", "two-phase"])
    def test_all_strategies(self, strategy, capsys):
        code = main(
            [
                "run", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--block-mib", "1",
                "--transfer-mib", "1", "--strategy", strategy,
            ]
        )
        assert code == 0


class TestTrace:
    ARGS = [
        "trace", "--machine", "testbed-4", "--procs", "8",
        "--procs-per-node", "2", "--block-mib", "2",
        "--transfer-mib", "1", "--memory-mib", "1",
    ]

    @pytest.mark.parametrize("strategy", ["two-phase", "mc"])
    def test_renders_breakdown_for_both_strategies(self, strategy, capsys):
        assert main([*self.ARGS, "--strategy", strategy]) == 0
        out = capsys.readouterr().out
        assert "per-round breakdown" in out
        assert "per-resource utilization" in out
        assert "round" in out and "bottleneck ms" in out
        assert "ost" in out
        assert "counters:" in out

    @pytest.mark.parametrize("strategy", ["independent", "sieving"])
    def test_non_collective_strategies_have_telemetry(self, strategy, capsys):
        assert main([*self.ARGS, "--strategy", strategy]) == 0
        out = capsys.readouterr().out
        assert "per-round breakdown" in out

    def test_json_dump_and_from_json(self, capsys, tmp_path):
        dump = tmp_path / "run.json"
        assert main([*self.ARGS, "--strategy", "mc", "--json", str(dump)]) == 0
        capsys.readouterr()
        assert dump.exists()
        assert main(["trace", "--from-json", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "memory-conscious" in out
        assert "per-round breakdown" in out

    def test_csv_export(self, capsys, tmp_path):
        csv_path = tmp_path / "rounds.csv"
        assert main([*self.ARGS, "--strategy", "two-phase",
                     "--csv", str(csv_path)]) == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0] == "round,resource,phase,bytes,capacity"
        assert len(lines) > 1


class TestCampaign:
    ARGS = [
        "campaign", "--machine", "testbed-4", "--procs", "8",
        "--procs-per-node", "2", "--block-mib", "2",
        "--transfer-mib", "1", "--memory-mib", "1", "4",
    ]

    def test_grid_runs_and_summarizes(self, capsys):
        assert main([*self.ARGS, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out
        assert "4 points: 4 ok, 0 errors" in out

    def test_cache_and_results_roundtrip(self, capsys, tmp_path):
        results = tmp_path / "camp.jsonl"
        cache = tmp_path / "plans"
        extra = ["--results", str(results), "--cache-dir", str(cache),
                 "--verbose"]
        assert main([*self.ARGS, *extra]) == 0
        out = capsys.readouterr().out
        assert "plan cache: 0 hits / 2 misses" in out
        assert "[0]" in out  # --verbose per-point lines

        # resumed re-run touches nothing and reports the skips
        assert main([*self.ARGS, *extra, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "4 resumed" in out

        # the store feeds `repro trace`
        assert main(["trace", "--from-json", str(results)]) == 0
        assert "per-round breakdown" in capsys.readouterr().out

    def test_seeds_axis(self, capsys):
        assert main([*self.ARGS, "--seeds", "7", "8",
                     "--strategies", "mc"]) == 0
        out = capsys.readouterr().out
        assert "4 points: 4 ok, 0 errors" in out


class TestSweep:
    def test_sweep_table(self, capsys):
        code = main(
            [
                "sweep", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--block-mib", "2",
                "--transfer-mib", "1", "--memory-mib", "1", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "two-phase" in out
        assert "improvement" in out
        assert "1 MiB" in out and "4 MiB" in out
