"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro import FaultEvent, FaultSpec
from repro.cli import main


class TestProject:
    def test_prints_table1(self, capsys):
        assert main(["project"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Total Concurrency" in out
        assert "memory per core" in out


class TestTune:
    def test_prints_parameters(self, capsys):
        assert main(["tune", "--machine", "testbed-4"]) == 0
        out = capsys.readouterr().out
        assert "Nah" in out
        assert "Msg_group" in out

    def test_verbose_curves(self, capsys):
        assert main(["tune", "--machine", "testbed-4", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "node sweep" in out
        assert "system sweep" in out

    def test_unknown_machine(self, capsys):
        assert main(["tune", "--machine", "cray-1"]) == 3  # EXIT_SPEC
        assert "unknown machine" in capsys.readouterr().err


class TestRun:
    def test_mc_run_summary(self, capsys):
        code = main(
            [
                "run", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--block-mib", "1",
                "--transfer-mib", "1", "--memory-mib", "1",
                "--strategy", "mc",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "memory-conscious write" in out
        assert "MiB/s" in out or "GiB/s" in out

    def test_trace_output(self, capsys):
        main(
            [
                "run", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--block-mib", "1",
                "--transfer-mib", "1", "--strategy", "two-phase", "--trace",
            ]
        )
        out = capsys.readouterr().out
        assert "request_exchange" in out
        assert "transfer" in out

    @pytest.mark.parametrize("strategy", ["independent", "sieving", "two-phase"])
    def test_all_strategies(self, strategy, capsys):
        code = main(
            [
                "run", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--block-mib", "1",
                "--transfer-mib", "1", "--strategy", strategy,
            ]
        )
        assert code == 0


class TestTrace:
    ARGS = [
        "trace", "--machine", "testbed-4", "--procs", "8",
        "--procs-per-node", "2", "--block-mib", "2",
        "--transfer-mib", "1", "--memory-mib", "1",
    ]

    @pytest.mark.parametrize("strategy", ["two-phase", "mc"])
    def test_renders_breakdown_for_both_strategies(self, strategy, capsys):
        assert main([*self.ARGS, "--strategy", strategy]) == 0
        out = capsys.readouterr().out
        assert "per-round breakdown" in out
        assert "per-resource utilization" in out
        assert "round" in out and "bottleneck ms" in out
        assert "ost" in out
        assert "counters:" in out

    @pytest.mark.parametrize("strategy", ["independent", "sieving"])
    def test_non_collective_strategies_have_telemetry(self, strategy, capsys):
        assert main([*self.ARGS, "--strategy", strategy]) == 0
        out = capsys.readouterr().out
        assert "per-round breakdown" in out

    def test_json_dump_and_from_json(self, capsys, tmp_path):
        dump = tmp_path / "run.json"
        assert main([*self.ARGS, "--strategy", "mc", "--json", str(dump)]) == 0
        capsys.readouterr()
        assert dump.exists()
        assert main(["trace", "--from-json", str(dump)]) == 0
        out = capsys.readouterr().out
        assert "memory-conscious" in out
        assert "per-round breakdown" in out

    def test_csv_export(self, capsys, tmp_path):
        csv_path = tmp_path / "rounds.csv"
        assert main([*self.ARGS, "--strategy", "two-phase",
                     "--csv", str(csv_path)]) == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0] == "round,resource,phase,bytes,capacity"
        assert len(lines) > 1


class TestCampaign:
    ARGS = [
        "campaign", "--machine", "testbed-4", "--procs", "8",
        "--procs-per-node", "2", "--block-mib", "2",
        "--transfer-mib", "1", "--memory-mib", "1", "4",
    ]

    def test_grid_runs_and_summarizes(self, capsys):
        assert main([*self.ARGS, "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out
        assert "4 points: 4 ok, 0 errors" in out

    def test_cache_and_results_roundtrip(self, capsys, tmp_path):
        results = tmp_path / "camp.jsonl"
        cache = tmp_path / "plans"
        extra = ["--results", str(results), "--cache-dir", str(cache),
                 "--verbose"]
        assert main([*self.ARGS, *extra]) == 0
        out = capsys.readouterr().out
        assert "plan cache: 0 hits / 2 misses" in out
        assert "[0]" in out  # --verbose per-point lines

        # resumed re-run touches nothing and reports the skips
        assert main([*self.ARGS, *extra, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "4 resumed" in out

        # the store feeds `repro trace`
        assert main(["trace", "--from-json", str(results)]) == 0
        assert "per-round breakdown" in capsys.readouterr().out

    def test_seeds_axis(self, capsys):
        assert main([*self.ARGS, "--seeds", "7", "8",
                     "--strategies", "mc"]) == 0
        out = capsys.readouterr().out
        assert "4 points: 4 ok, 0 errors" in out


class TestSweep:
    def test_sweep_table(self, capsys):
        code = main(
            [
                "sweep", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--block-mib", "2",
                "--transfer-mib", "1", "--memory-mib", "1", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "two-phase" in out
        assert "memory-conscious" in out
        assert "improvement" in out
        assert "1 MiB" in out and "4 MiB" in out

    def test_sweep_accepts_auto_arm(self, capsys):
        code = main(
            [
                "sweep", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--block-mib", "2",
                "--transfer-mib", "1", "--memory-mib", "1",
                "--strategies", "two-phase", "mc", "auto",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "auto" in out
        assert "memory-conscious" in out

    def test_sweep_rejects_unknown_arm(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep", "--machine", "testbed-4", "--procs", "8",
                    "--strategies", "two-phse",
                ]
            )
        assert "invalid choice" in capsys.readouterr().err


class TestNewWorkloadFlags:
    BASE = [
        "run", "--machine", "testbed-4", "--procs", "8",
        "--procs-per-node", "2", "--memory-mib", "1",
    ]

    def test_file_per_task(self, capsys):
        code = main(
            [
                *self.BASE, "--workload", "file-per-task", "--strategy", "mc",
                "--task-kib", "64", "--tasks-per-rank", "2",
                "--task-layout", "grouped",
            ]
        )
        assert code == 0
        assert "memory-conscious write" in capsys.readouterr().out

    def test_nested_strided_with_auto(self, capsys):
        code = main(
            [
                *self.BASE, "--workload", "nested-strided",
                "--strategy", "auto", "--nest-block-kib", "16",
                "--inner-count", "3", "--outer-count", "3",
                "--hole-factor", "2",
            ]
        )
        assert code == 0
        assert "write" in capsys.readouterr().out

    def test_hotspot(self, capsys):
        code = main(
            [
                *self.BASE, "--workload", "hotspot", "--strategy", "two-phase",
                "--hot-mib", "4", "--hot-fraction", "0.7", "--hot-ranks", "2",
            ]
        )
        assert code == 0
        assert "write" in capsys.readouterr().out

    def test_campaign_accepts_auto_strategy(self, capsys):
        code = main(
            [
                "campaign", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--workload", "hotspot",
                "--memory-mib", "4", "--strategies", "two-phase", "auto",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 points: 2 ok, 0 errors" in out
        assert "auto" in out


class TestVarianceFlag:
    RUN = [
        "run", "--machine", "testbed-4", "--procs", "8",
        "--procs-per-node", "2", "--block-mib", "1",
        "--transfer-mib", "1", "--memory-mib", "1", "--strategy", "mc",
    ]
    SWEEP = [
        "sweep", "--machine", "testbed-4", "--procs", "8",
        "--procs-per-node", "2", "--block-mib", "2",
        "--transfer-mib", "1", "--memory-mib", "4",
    ]

    def test_run_defaults_to_no_variance(self, capsys):
        # sweep's historic 50 MiB default must not leak into `run`
        # through the shared parent parser: no flag == explicit 0
        assert main(self.RUN) == 0
        plain = capsys.readouterr().out
        assert main([*self.RUN, "--variance-mib", "0"]) == 0
        assert capsys.readouterr().out == plain

    def test_sweep_keeps_its_historic_default(self, capsys):
        assert main(self.SWEEP) == 0
        default = capsys.readouterr().out
        assert main([*self.SWEEP, "--variance-mib", "50"]) == 0
        assert capsys.readouterr().out == default

    def test_sweep_variance_zero_really_disables(self, capsys):
        assert main(self.SWEEP) == 0
        default = capsys.readouterr().out
        assert main([*self.SWEEP, "--variance-mib", "0"]) == 0
        assert capsys.readouterr().out != default


class TestFaultsFlag:
    RUN = [
        "run", "--machine", "testbed-4", "--procs", "8",
        "--procs-per-node", "2", "--block-mib", "2",
        "--transfer-mib", "1", "--memory-mib", "1",
        "--strategy", "two-phase",
    ]

    def test_compact_form_smoke(self, capsys):
        assert main([*self.RUN, "--faults", "mem=1,seed=2"]) == 0
        assert "write" in capsys.readouterr().out

    def test_trace_renders_recoveries_from_spec_file(self, capsys, tmp_path):
        spec = FaultSpec(
            events=(
                FaultEvent(
                    kind="mem_pressure", time=1e-3, target=0, fraction=1.0
                ),
            ),
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        args = ["trace", *self.RUN[1:], "--faults", f"@{path}"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "faults and recoveries" in out
        assert "mem_pressure" in out
        assert "recovery" in out
        assert "total recovery cost" in out

    def test_campaign_applies_faults_to_every_point(self, capsys):
        args = [
            "campaign", "--machine", "testbed-4", "--procs", "8",
            "--procs-per-node", "2", "--block-mib", "2",
            "--transfer-mib", "1", "--memory-mib", "1", "4",
            "--faults", "mem=1,seed=2",
        ]
        assert main(args) == 0
        assert "4 points: 4 ok, 0 errors" in capsys.readouterr().out

    def test_bad_faults_string_exits(self, capsys):
        # Bad specs map to the spec exit code (3), message on stderr.
        assert main([*self.RUN, "--faults", "explode=1"]) == 3
        assert "--faults" in capsys.readouterr().err


class TestCheckPlan:
    @pytest.fixture
    def cache_dir(self, tmp_path):
        """A one-entry plan cache built from a tiny experiment."""
        from repro.api import Experiment
        from repro.campaign import PlanCache
        from repro.util import mib

        exp = Experiment(
            machine="testbed-4", n_procs=8, procs_per_node=2,
            workload_params={"block_size": mib(1), "transfer_size": mib(1) // 4},
            cb_buffer=mib(1), seed=3,
        )
        cache = PlanCache(tmp_path / "plans")
        cache.store(exp.spec_hash(), exp.plan())
        return cache

    def test_clean_file_exits_zero(self, capsys, cache_dir):
        path = next(cache_dir.root.glob("*.plan.json"))
        assert main(["check-plan", str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_clean_dir_exits_zero(self, capsys, cache_dir):
        assert main(["check-plan", str(cache_dir.root)]) == 0

    def test_violating_plan_exits_nonzero(self, capsys, cache_dir):
        path = next(cache_dir.root.glob("*.plan.json"))
        data = json.loads(path.read_text())
        data["domains"][0]["buffer_bytes"] = 10**12
        path.write_text(json.dumps(data))
        assert main(["check-plan", str(path)]) == 4  # EXIT_PLAN_VERIFY
        assert "PV109" in capsys.readouterr().out

    def test_json_format(self, capsys, cache_dir):
        path = next(cache_dir.root.glob("*.plan.json"))
        assert main(["check-plan", str(path), "--format", "json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert reports[0]["ok"] is True

    def test_empty_dir_exits_nonzero(self, tmp_path, capsys):
        assert main(["check-plan", str(tmp_path)]) == 1


class TestLint:
    def test_shipped_tree_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "core" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(tmp_path)]) == 1
        # the flow-sensitive L310 subsumed the old L201 heuristic
        assert "L310" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "sim" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import time\nt = time.time()\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["violations"][0]["rule"] == "L202"

    def test_select_filters_rules(self, tmp_path, capsys):
        bad = tmp_path / "core" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import random, time\nx = random.random()\nt = time.time()\n")
        assert main(["lint", str(tmp_path), "--select", "L202"]) == 1
        out = capsys.readouterr().out
        assert "L202" in out and "L310" not in out

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "L200", "L201", "L202", "L203", "L204", "L205",
            "L300", "L301", "L302", "L310", "L320",
        ):
            assert code in out

    def test_sarif_format(self, tmp_path, capsys):
        bad = tmp_path / "core" / "bad.py"
        bad.parent.mkdir()
        bad.write_text("import random\nx = random.random()\n")
        assert main(["lint", str(tmp_path), "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"][0]["ruleId"] == "L310"

    def test_update_baseline_grandfathers_findings(self, tmp_path, capsys):
        bad = tmp_path / "pkg" / "core" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import random\nx = random.random()\n")
        baseline = tmp_path / "baseline.json"
        root = str(tmp_path / "pkg")
        assert main(
            ["lint", root, "--baseline", str(baseline), "--update-baseline"]
        ) == 0
        assert baseline.exists()
        capsys.readouterr()
        # grandfathered finding no longer fails the run
        assert main(["lint", root, "--baseline", str(baseline)]) == 0
        assert "grandfathered" in capsys.readouterr().out

    def test_stale_baseline_fails(self, tmp_path, capsys):
        clean = tmp_path / "pkg" / "core" / "ok.py"
        clean.parent.mkdir(parents=True)
        clean.write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [
                {"rule": "L310", "file": "core/gone.py", "count": 1,
                 "reason": "fixed long ago"},
            ],
        }))
        assert main(
            ["lint", str(tmp_path / "pkg"), "--baseline", str(baseline)]
        ) == 1
        assert "stale" in capsys.readouterr().err


class TestServe:
    def test_daemon_boots_serves_and_reports(self, tmp_path):
        """`repro serve` over a unix socket: boot, plan twice (miss then
        hit), SIGINT, exit 0 with the counter summary + metrics dump."""
        import os
        import signal
        import subprocess
        import sys
        import time

        sock = tmp_path / "serve.sock"
        metrics_json = tmp_path / "metrics.json"
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--no-tcp",
             "--unix-socket", str(sock), "--pool", "thread",
             "--cache-dir", str(tmp_path / "cache"),
             "--metrics-json", str(metrics_json)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            env=env, cwd="/root/repo", text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while not sock.exists():
                assert proc.poll() is None, proc.stdout.read()
                assert time.monotonic() < deadline, "daemon never bound"
                time.sleep(0.05)

            from repro import Experiment, PlanClient, mib

            exp = Experiment(
                machine="testbed-4", n_procs=8, procs_per_node=2,
                workload_params={"block_size": mib(1),
                                 "transfer_size": mib(1) // 4},
                cb_buffer=mib(1), seed=3,
            )
            with PlanClient(unix_socket=str(sock), fallback=False) as client:
                first = client.plan(exp)
                second = client.plan(exp)
            assert (first.cache_state, second.cache_state) == ("miss", "hit")
            assert first.plan == second.plan
        finally:
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=30)
        assert proc.returncode == 0, out
        assert "listening on unix:" in out
        assert "requests=" in out and "hits=1" in out
        metrics = json.loads(metrics_json.read_text())
        assert metrics["counters"]["planning_jobs"] == 1
