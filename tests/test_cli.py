"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestProject:
    def test_prints_table1(self, capsys):
        assert main(["project"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Total Concurrency" in out
        assert "memory per core" in out


class TestTune:
    def test_prints_parameters(self, capsys):
        assert main(["tune", "--machine", "testbed-4"]) == 0
        out = capsys.readouterr().out
        assert "Nah" in out
        assert "Msg_group" in out

    def test_verbose_curves(self, capsys):
        assert main(["tune", "--machine", "testbed-4", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "node sweep" in out
        assert "system sweep" in out

    def test_unknown_machine(self):
        with pytest.raises(SystemExit):
            main(["tune", "--machine", "cray-1"])


class TestRun:
    def test_mc_run_summary(self, capsys):
        code = main(
            [
                "run", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--block-mib", "1",
                "--transfer-mib", "1", "--memory-mib", "1",
                "--strategy", "mc",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "memory-conscious write" in out
        assert "MiB/s" in out or "GiB/s" in out

    def test_trace_output(self, capsys):
        main(
            [
                "run", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--block-mib", "1",
                "--transfer-mib", "1", "--strategy", "two-phase", "--trace",
            ]
        )
        out = capsys.readouterr().out
        assert "request_exchange" in out
        assert "transfer" in out

    @pytest.mark.parametrize("strategy", ["independent", "sieving", "two-phase"])
    def test_all_strategies(self, strategy, capsys):
        code = main(
            [
                "run", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--block-mib", "1",
                "--transfer-mib", "1", "--strategy", strategy,
            ]
        )
        assert code == 0


class TestSweep:
    def test_sweep_table(self, capsys):
        code = main(
            [
                "sweep", "--machine", "testbed-4", "--procs", "8",
                "--procs-per-node", "2", "--block-mib", "2",
                "--transfer-mib", "1", "--memory-mib", "1", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "two-phase" in out
        assert "improvement" in out
        assert "1 MiB" in out and "4 MiB" in out
