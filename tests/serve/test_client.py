"""PlanClient / ServeClient: fallback, parity, error mapping."""

from __future__ import annotations

import json

import pytest

from repro.client import PlanClient, ServeClient
from repro.serve import PlannerService, ServeDaemon, ShardedPlanCache
from repro.serve.daemon import daemon_in_thread
from repro.serve.protocol import PlanRequest
from repro.util.errors import (
    PlanVerificationError,
    ReproError,
    ServeOverloadError,
    SpecError,
)
from tests.serve.conftest import small_experiment


def canonical(plan) -> bytes:
    return json.dumps(dict(plan), sort_keys=True).encode()


class TestInProcessFallback:
    def test_pure_in_process_client(self, tmp_path, fields):
        with PlanClient(cache_dir=str(tmp_path / "cache")) as client:
            first = client.plan(fields)
            second = client.plan(fields)
        assert client.mode == "in-process"
        assert (first.cache_state, second.cache_state) == ("miss", "hit")
        assert canonical(first.plan) == canonical(second.plan)

    def test_accepts_experiment_objects(self, tmp_path):
        with PlanClient(cache_dir=str(tmp_path / "cache")) as client:
            response = client.plan(small_experiment())
        assert response.spec_hash == small_experiment().spec_hash()

    def test_dead_daemon_demotes_to_in_process(self, fields):
        # Nothing listens on this port; fallback must answer anyway.
        with PlanClient("http://127.0.0.1:9") as client:
            assert client.mode == "daemon"
            response = client.plan(fields)
            assert client.mode == "in-process"
        assert response.cache_state == "miss"

    def test_fallback_disabled_surfaces_the_failure(self, fields):
        with PlanClient("http://127.0.0.1:9", fallback=False) as client:
            with pytest.raises(ReproError, match="unreachable"):
                client.plan(fields)

    def test_local_metrics_snapshot(self, tmp_path, fields):
        with PlanClient(cache_dir=str(tmp_path / "cache")) as client:
            client.plan(fields)
            client.plan(fields)
            metrics = client.server_metrics()
        assert metrics["counters"]["hits"] == 1
        assert metrics["counters"]["planning_jobs"] == 1
        assert metrics["cache"]["entries"] == 1


class TestDaemonParity:
    def test_fallback_plans_byte_identical_to_daemon(self, tmp_path, fields):
        """The redesign's core contract: the same spec yields the same
        spec_hash and byte-identical plan dicts from the daemon and from
        the in-process fallback."""
        cache = ShardedPlanCache(tmp_path / "daemon-cache", shards=2)
        service = PlannerService(cache, pool="thread", pool_workers=2)
        daemon = ServeDaemon(service, port=0)
        with daemon_in_thread(daemon):
            with PlanClient(daemon.url) as via_daemon:
                daemon_response = via_daemon.plan_request(
                    PlanRequest(experiment=fields)
                )
                assert via_daemon.mode == "daemon"
        service.close_sync()

        with PlanClient(cache_dir=str(tmp_path / "local-cache")) as local:
            local_response = local.plan_request(PlanRequest(experiment=fields))
            assert local.mode == "in-process"

        assert daemon_response.spec_hash == local_response.spec_hash
        assert canonical(daemon_response.plan) == canonical(local_response.plan)

    def test_process_pool_daemon_parity(self, tmp_path, fields):
        """Same contract with the production (process-pool) executor."""
        service = PlannerService(
            ShardedPlanCache(tmp_path / "cache", shards=2),
            pool="process", pool_workers=1,
        )
        daemon = ServeDaemon(service, port=0)
        with daemon_in_thread(daemon):
            with PlanClient(daemon.url) as client:
                response = client.plan_request(PlanRequest(experiment=fields))
        service.close_sync()

        with PlanClient() as local:
            fallback = local.plan_request(PlanRequest(experiment=fields))
        assert canonical(response.plan) == canonical(fallback.plan)


class TestErrorMapping:
    def test_overload_maps_to_serve_overload_error(self, fields):
        from repro.client import _raise_for_error

        with pytest.raises(ServeOverloadError) as excinfo:
            _raise_for_error(429, {
                "code": "overloaded", "message": "busy", "retry_after_s": 0.25,
            })
        assert excinfo.value.retry_after_s == 0.25

    def test_spec_error_mapping(self):
        from repro.client import _raise_for_error

        with pytest.raises(SpecError):
            _raise_for_error(422, {"code": "spec-error", "message": "bad"})

    def test_verify_failed_mapping(self):
        from repro.client import _raise_for_error

        with pytest.raises(PlanVerificationError) as excinfo:
            _raise_for_error(500, {
                "code": "verify-failed", "message": "bad plan",
                "detail": {"by_rule": {"PV109": 2}},
            })
        assert excinfo.value.by_rule == {"PV109": 2}

    def test_unknown_error_maps_to_repro_error(self):
        from repro.client import _raise_for_error

        with pytest.raises(ReproError, match="internal"):
            _raise_for_error(500, {"code": "internal", "message": "boom"})

    def test_serve_client_requires_one_address(self):
        with pytest.raises(SpecError, match="exactly one"):
            ServeClient()
        with pytest.raises(SpecError, match="exactly one"):
            ServeClient("http://x:1", unix_socket="/tmp/s")

    def test_bad_url_scheme_rejected(self):
        client = ServeClient("ftp://127.0.0.1:1")
        with pytest.raises(SpecError, match="http"):
            client.request("GET", "/healthz")


class TestPublicSurface:
    def test_package_exports(self):
        import repro

        for name in (
            "PlanClient", "ServeClient", "PlanRequest", "PlanResponse",
            "ServeError", "ReproError", "SpecError", "PlanVerificationError",
            "CacheError", "TransientFaultError", "ServeOverloadError",
            "verify_plan",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None
