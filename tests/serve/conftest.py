"""Shared fixtures for the planning-service tests."""

from __future__ import annotations

import pytest

from repro import Experiment, mib
from repro.serve.protocol import experiment_fields


def small_experiment(seed: int = 3) -> Experiment:
    """A fast-to-plan mc experiment on the 4-node testbed."""
    return Experiment(
        machine="testbed-4",
        n_procs=8,
        procs_per_node=2,
        workload_params={"block_size": mib(1), "transfer_size": mib(1) // 4},
        cb_buffer=mib(1),
        seed=seed,
    )


@pytest.fixture
def fields():
    """The wire field dict of the standard small experiment."""
    return experiment_fields(small_experiment())


@pytest.fixture
def fields_pool():
    """Three planner-distinct wire field dicts (distinct seeds)."""
    return [experiment_fields(small_experiment(seed)) for seed in (3, 4, 5)]
