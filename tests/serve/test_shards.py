"""Sharded verified cache: routing, verification policy, byte bounds."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import spec_hash_for_fields
from repro.serve.service import plan_payload_for_fields
from repro.serve.shards import ShardedPlanCache
from repro.util.errors import CacheError


@pytest.fixture
def entry(fields):
    """(spec_hash, canonical plan dict) for the standard experiment."""
    return spec_hash_for_fields(fields), plan_payload_for_fields(fields)


class TestAddressing:
    def test_shard_split_is_stable_and_total(self, tmp_path):
        cache = ShardedPlanCache(tmp_path, shards=4)
        keys = [f"{i:08x}{'0' * 56}" for i in range(64)]
        indices = [cache.shard_index(k) for k in keys]
        assert set(indices) == {0, 1, 2, 3}
        assert indices == [cache.shard_index(k) for k in keys]

    def test_non_hex_key_rejected(self, tmp_path):
        cache = ShardedPlanCache(tmp_path, shards=2)
        with pytest.raises(CacheError, match="not a hex spec hash"):
            cache.shard_index("zz-not-hex")

    def test_bad_shard_count(self, tmp_path):
        with pytest.raises(CacheError, match="shard count"):
            ShardedPlanCache(tmp_path, shards=0)

    def test_bound_too_small_for_shards(self, tmp_path):
        with pytest.raises(CacheError, match="too small"):
            ShardedPlanCache(tmp_path, shards=8, max_bytes=4)


class TestVerifiedLookup:
    def test_miss_then_hit(self, tmp_path, entry):
        key, plan = entry
        cache = ShardedPlanCache(tmp_path, shards=4)
        assert cache.get_verified(key) == (None, "miss", None)
        cache.put(key, plan)
        got, state, rules = cache.get_verified(key)
        assert (got, state, rules) == (plan, "hit", None)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_poisoned_entry_rejected_and_purged(self, tmp_path, entry):
        key, plan = entry
        cache = ShardedPlanCache(tmp_path, shards=4)
        cache.put(key, plan)
        poisoned = json.loads(json.dumps(plan))
        poisoned["domains"][0]["buffer_bytes"] = 10**12
        cache.put(key, poisoned)

        got, state, rules = cache.get_verified(key)
        assert got is None and state == "rejected"
        assert rules  # at least one violated rule reported
        assert key not in cache  # purged on the spot
        assert cache.rejects == 1
        # next lookup is a clean miss, not a replayed poisoned plan
        assert cache.get_verified(key)[1] == "miss"

    def test_verify_disabled_serves_poisoned_bytes(self, tmp_path, entry):
        key, plan = entry
        cache = ShardedPlanCache(tmp_path, shards=2, verify=False)
        poisoned = json.loads(json.dumps(plan))
        poisoned["domains"][0]["buffer_bytes"] = 10**12
        cache.put(key, poisoned)
        got, state, _ = cache.get_verified(key)
        assert state == "hit" and got == poisoned

    def test_persistence_across_instances(self, tmp_path, entry):
        key, plan = entry
        ShardedPlanCache(tmp_path, shards=4).put(key, plan)
        reopened = ShardedPlanCache(tmp_path, shards=4)
        assert len(reopened) == 1
        assert reopened.get_verified(key)[1] == "hit"


class TestByteBound:
    def test_eviction_counter_rises_under_pressure(self, tmp_path, entry):
        key, plan = entry
        payload = len(json.dumps(plan, sort_keys=True).encode())
        # one shard, room for ~2 entries
        cache = ShardedPlanCache(tmp_path, shards=1, max_bytes=2 * payload + 8)
        hexdigits = "0123456789abcdef"
        keys = [hexdigits[i] * len(key) for i in range(5)]
        for k in keys:
            cache.put(k, plan)
        assert cache.evictions >= 3
        assert cache.total_bytes() <= 2 * payload + 8
        assert cache.stats()["evictions"] == cache.evictions
