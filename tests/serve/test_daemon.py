"""The HTTP/Unix front end, driven through real sockets."""

from __future__ import annotations

import json

import pytest

from repro.client import ServeClient
from repro.serve import PlannerService, ServeDaemon, ShardedPlanCache
from repro.serve.daemon import daemon_in_thread
from repro.serve.metrics import LatencyHistogram
from repro.serve.protocol import SCHEMA_VERSION, PlanRequest
from repro.serve.service import plan_payload_for_fields
from repro.util.errors import SpecError


@pytest.fixture
def served(tmp_path):
    """A live daemon (TCP + Unix socket) over a sharded cache."""
    cache = ShardedPlanCache(tmp_path / "cache", shards=2)
    service = PlannerService(cache, pool="thread", pool_workers=2)
    unix_path = str(tmp_path / "serve.sock")
    daemon = ServeDaemon(service, port=0, unix_path=unix_path)
    with daemon_in_thread(daemon):
        client = ServeClient(daemon.url)
        try:
            yield client, daemon, cache
        finally:
            client.close()
    service.close_sync()


class TestRoutes:
    def test_healthz(self, served):
        client, _, _ = served
        status, data = client.request("GET", "/healthz")
        assert status == 200
        assert data == {"status": "ok", "schema_version": SCHEMA_VERSION}
        assert client.healthy()

    def test_plan_miss_then_hit(self, served, fields):
        client, _, _ = served
        body = PlanRequest(experiment=fields).to_dict()
        status, first = client.request("POST", "/plan", body)
        assert status == 200 and first["cache_state"] == "miss"
        status, second = client.request("POST", "/plan", body)
        assert status == 200 and second["cache_state"] == "hit"
        assert second["plan"] == first["plan"]
        assert second["spec_hash"] == first["spec_hash"]

    def test_metrics_endpoint(self, served, fields):
        client, _, _ = served
        client.request("POST", "/plan", PlanRequest(experiment=fields).to_dict())
        status, data = client.request("GET", "/metrics")
        assert status == 200
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["counters"]["planning_jobs"] == 1
        assert data["endpoints"]["/plan"]["count"] >= 1
        assert data["cache"]["entries"] == 1
        assert "serve.requests" in data["telemetry"]["counters"]

    def test_unknown_route_404(self, served):
        client, _, _ = served
        status, data = client.request("GET", "/nope")
        assert status == 404 and data["code"] == "not-found"

    def test_wrong_method_405(self, served):
        client, _, _ = served
        status, _ = client.request("POST", "/metrics", {})
        assert status == 405

    def test_bad_json_400(self, served):
        client, daemon, _ = served
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=10)
        conn.request("POST", "/plan", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        data = json.loads(response.read())
        conn.close()
        assert response.status == 400 and data["code"] == "bad-request"

    def test_bad_spec_422(self, served, fields):
        client, _, _ = served
        bad = dict(fields, machine="no-such-machine")
        status, data = client.request(
            "POST", "/plan", PlanRequest(experiment=bad).to_dict()
        )
        assert status == 422 and data["code"] == "spec-error"

    def test_unknown_field_422(self, served, fields):
        client, _, _ = served
        body = PlanRequest(experiment=dict(fields, surprise=1)).to_dict()
        status, data = client.request("POST", "/plan", body)
        assert status == 422 and data["code"] == "spec-error"


class TestUnixSocket:
    def test_same_service_over_unix(self, served, fields):
        _, daemon, _ = served
        assert daemon.unix_path is not None
        unix_client = ServeClient(unix_socket=daemon.unix_path)
        try:
            status, data = unix_client.request(
                "POST", "/plan", PlanRequest(experiment=fields).to_dict()
            )
        finally:
            unix_client.close()
        assert status == 200
        assert data["cache_state"] in ("miss", "hit")


class TestPoisonedCacheThroughDaemon:
    def test_daemon_rejects_and_replans(self, served, fields):
        """A poisoned entry behind a live daemon is purged and replanned;
        the poisoned bytes never reach a client."""
        client, _, cache = served
        body = PlanRequest(experiment=fields).to_dict()
        _, first = client.request("POST", "/plan", body)
        key = first["spec_hash"]

        clean = plan_payload_for_fields(fields)
        poisoned = json.loads(json.dumps(clean))
        poisoned["domains"][0]["buffer_bytes"] = 10**12
        cache.put(key, poisoned)

        status, served_again = client.request("POST", "/plan", body)
        assert status == 200
        assert served_again["cache_state"] == "rejected"
        assert served_again["plan"] == clean
        _, metrics = client.request("GET", "/metrics")
        assert metrics["counters"]["rejects"] == 1
        # replanned entry was re-stored; the next request is a clean hit
        _, third = client.request("POST", "/plan", body)
        assert third["cache_state"] == "hit"


def _crashing_plan_fn(fields):
    raise MemoryError("worker OOM-killed mid-plan")


class TestWorkerDeath:
    def test_worker_crash_answers_500_worker_failed(self, tmp_path, fields):
        """A dying planning worker is a structured server-side failure:
        500 with the stable ``worker-failed`` code, not a hung socket or
        a generic ``internal`` blob — and the daemon keeps serving."""
        service = PlannerService(
            pool="thread", pool_workers=1, plan_fn=_crashing_plan_fn
        )
        daemon = ServeDaemon(service, port=0)
        with daemon_in_thread(daemon):
            client = ServeClient(daemon.url)
            try:
                body = PlanRequest(experiment=fields).to_dict()
                status, data = client.request("POST", "/plan", body)
                assert status == 500
                assert data["code"] == "worker-failed"
                assert "MemoryError" in data["message"]
                _, metrics = client.request("GET", "/metrics")
                assert metrics["counters"]["worker_failures"] == 1
                # the daemon survived the crash and still answers
                assert client.healthy()
            finally:
                client.close()
        service.close_sync()

    def test_library_errors_still_map_to_spec_error(self, tmp_path, fields):
        """ReproError from the worker is the client's problem (422),
        never laundered into ``worker-failed``."""

        def bad_spec(_fields):
            raise SpecError("synthetic spec rejection")

        service = PlannerService(pool="thread", pool_workers=1, plan_fn=bad_spec)
        daemon = ServeDaemon(service, port=0)
        with daemon_in_thread(daemon):
            client = ServeClient(daemon.url)
            try:
                body = PlanRequest(experiment=fields).to_dict()
                status, data = client.request("POST", "/plan", body)
                assert status == 422 and data["code"] == "spec-error"
            finally:
                client.close()
        service.close_sync()


class TestDaemonConstruction:
    def test_needs_some_listener(self):
        service = PlannerService(pool="thread", pool_workers=1)
        with pytest.raises(SpecError, match="TCP port and/or a unix socket"):
            ServeDaemon(service, port=None, unix_path=None)
        service.close_sync()


class TestLatencyHistogram:
    def test_quantiles_are_conservative(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.002, 0.004, 0.008, 0.5):
            hist.observe(value)
        assert hist.count == 5
        assert hist.quantile(0.5) >= 0.002
        assert hist.quantile(0.99) >= 0.5 or hist.quantile(0.99) == hist.max_s
        stats = hist.to_dict()
        assert stats["max_s"] == 0.5
        assert stats["p95_s"] >= stats["p50_s"]

    def test_empty_histogram(self):
        assert LatencyHistogram().quantile(0.95) == 0.0
