"""Wire contract: field extraction, validation, round trips, hashing."""

from __future__ import annotations

import pytest

from repro import Experiment, mib
from repro.serve.protocol import (
    SCHEMA_VERSION,
    PlanRequest,
    PlanResponse,
    ServeError,
    experiment_fields,
    experiment_from_fields,
    spec_hash_for_fields,
)
from repro.util.errors import SpecError
from tests.serve.conftest import small_experiment


class TestExperimentFields:
    def test_round_trip_preserves_spec_hash(self):
        exp = small_experiment()
        rebuilt = experiment_from_fields(experiment_fields(exp))
        assert rebuilt.spec_hash() == exp.spec_hash()

    def test_instance_form_specs_are_rejected(self):
        from repro.io import CollectiveHints

        exp = Experiment(
            machine="testbed-4", n_procs=8, procs_per_node=2,
            workload_params={"block_size": mib(1), "transfer_size": mib(1) // 4},
            hints=CollectiveHints(cb_buffer_size=mib(1)),
        )
        with pytest.raises(SpecError, match="no wire form"):
            experiment_fields(exp)

    def test_unknown_field_rejected(self, fields):
        fields["surprise"] = 1
        with pytest.raises(SpecError, match="unknown experiment field"):
            experiment_from_fields(fields)

    def test_wrong_type_rejected(self, fields):
        fields["n_procs"] = "eight"
        with pytest.raises(SpecError, match="n_procs"):
            experiment_from_fields(fields)

    def test_bool_is_not_an_int(self, fields):
        fields["n_procs"] = True
        with pytest.raises(SpecError, match="n_procs"):
            experiment_from_fields(fields)

    def test_non_mapping_rejected(self):
        with pytest.raises(SpecError, match="must be an object"):
            experiment_from_fields([1, 2])  # type: ignore[arg-type]

    def test_unknown_strategy_rejected_at_the_edge(self, fields):
        # Value-level validation: a typo'd strategy is a structured
        # SpecError here (the daemon answers 422), never a late failure
        # deep inside planning.
        fields["strategy"] = "two-phse"
        with pytest.raises(SpecError, match="unknown strategy"):
            experiment_from_fields(fields)

    def test_unknown_workload_rejected_at_the_edge(self, fields):
        fields["workload"] = "iorr"
        with pytest.raises(SpecError, match="unknown workload"):
            experiment_from_fields(fields)

    @pytest.mark.parametrize(
        "workload,strategy",
        [("file-per-task", "auto"), ("nested-strided", "mc"),
         ("hotspot", "two-phase")],
    )
    def test_new_workloads_and_auto_cross_the_wire(self, fields, workload, strategy):
        fields["workload"] = workload
        fields["strategy"] = strategy
        fields["workload_params"] = {}
        exp = experiment_from_fields(fields)
        assert exp.workload == workload
        assert exp.strategy == strategy


class TestSpecHash:
    def test_matches_experiment_spec_hash(self, fields):
        assert spec_hash_for_fields(fields) == small_experiment().spec_hash()

    def test_key_order_does_not_matter(self, fields):
        shuffled = dict(reversed(list(fields.items())))
        assert spec_hash_for_fields(shuffled) == spec_hash_for_fields(fields)

    def test_distinct_seeds_distinct_hashes(self, fields_pool):
        hashes = {spec_hash_for_fields(f) for f in fields_pool}
        assert len(hashes) == len(fields_pool)


class TestDataclasses:
    def test_request_round_trip(self, fields):
        request = PlanRequest(experiment=fields)
        clone = PlanRequest.from_dict(request.to_dict())
        assert clone.spec_hash() == request.spec_hash()
        assert clone.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_request_schema_version_mismatch(self, fields):
        data = PlanRequest(experiment=fields).to_dict()
        data["schema_version"] = 999
        with pytest.raises(SpecError, match="schema_version"):
            PlanRequest.from_dict(data)

    def test_request_without_experiment(self):
        with pytest.raises(SpecError, match="experiment"):
            PlanRequest.from_dict({"schema_version": SCHEMA_VERSION})

    def test_response_round_trip(self):
        response = PlanResponse(
            spec_hash="ab" * 16, plan={"k": 1}, cache_state="hit",
            server_wall_s=0.25,
        )
        clone = PlanResponse.from_dict(response.to_dict())
        assert clone == response

    def test_error_round_trip_with_retry(self):
        error = ServeError("overloaded", "busy", retry_after_s=0.5)
        clone = ServeError.from_dict(error.to_dict())
        assert clone.retry_after_s == 0.5
        assert clone.code == "overloaded"

    def test_error_round_trip_without_retry(self):
        error = ServeError("spec-error", "bad", detail={"field": "n_procs"})
        clone = ServeError.from_dict(error.to_dict())
        assert clone.retry_after_s is None
        assert clone.detail == {"field": "n_procs"}
