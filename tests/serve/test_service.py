"""PlannerService: coalescing, admission control, verified replanning."""

from __future__ import annotations

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.protocol import PlanRequest, spec_hash_for_fields
from repro.serve.service import PlannerService, plan_payload_for_fields
from repro.serve.shards import ShardedPlanCache
from repro.util.errors import ConfigurationError, ServeOverloadError


class GatedPlanner:
    """A plan_fn whose completion the test scripts explicitly."""

    def __init__(self) -> None:
        self.calls = 0
        self.entered = threading.Event()
        self.release = threading.Event()
        self._lock = threading.Lock()

    def __call__(self, fields: dict) -> dict:
        with self._lock:
            self.calls += 1
        self.entered.set()
        assert self.release.wait(timeout=30), "test never released the gate"
        return {"planned_for_seed": fields.get("seed")}


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_k_identical_requests_one_planning_job(self, fields):
        """The tentpole guarantee: K concurrent identical specs -> 1 job."""
        planner = GatedPlanner()
        executor = ThreadPoolExecutor(max_workers=4)
        service = PlannerService(executor=executor, plan_fn=planner)
        request = PlanRequest(experiment=fields)
        k = 8

        async def scenario():
            tasks = [asyncio.create_task(service.plan(request)) for _ in range(k)]
            await asyncio.to_thread(planner.entered.wait, 30)
            # All waiters are now either in the executor job or parked on
            # the in-flight future; releasing the gate resolves them all.
            planner.release.set()
            return await asyncio.gather(*tasks)

        responses = run(scenario())
        executor.shutdown(wait=True)

        assert planner.calls == 1
        states = sorted(r.cache_state for r in responses)
        assert states.count("miss") == 1
        assert states.count("coalesced") == k - 1
        assert len({json.dumps(dict(r.plan), sort_keys=True) for r in responses}) == 1
        assert service.metrics.snapshot()["counters"]["coalesced"] == k - 1
        assert service.metrics.snapshot()["counters"]["planning_jobs"] == 1

    def test_distinct_specs_do_not_coalesce(self, fields_pool):
        planner = GatedPlanner()
        planner.release.set()  # no gating; just count jobs
        executor = ThreadPoolExecutor(max_workers=4)
        service = PlannerService(executor=executor, plan_fn=planner)

        async def scenario():
            return await asyncio.gather(
                *(service.plan(PlanRequest(experiment=f)) for f in fields_pool)
            )

        responses = run(scenario())
        executor.shutdown(wait=True)
        assert planner.calls == len(fields_pool)
        assert all(r.cache_state == "miss" for r in responses)


class TestBackpressure:
    def test_queue_full_refuses_with_retry_hint(self, fields_pool):
        """Past max_pending the service sheds load loudly: RetryLater
        with a positive suggested delay, and nothing is silently
        dropped — the admitted job still completes."""
        planner = GatedPlanner()
        executor = ThreadPoolExecutor(max_workers=2)
        service = PlannerService(
            executor=executor, plan_fn=planner, max_pending=1
        )

        async def scenario():
            first = asyncio.create_task(
                service.plan(PlanRequest(experiment=fields_pool[0]))
            )
            await asyncio.to_thread(planner.entered.wait, 30)
            assert service.pending == 1
            with pytest.raises(ServeOverloadError) as excinfo:
                await service.plan(PlanRequest(experiment=fields_pool[1]))
            assert excinfo.value.retry_after_s > 0
            planner.release.set()
            response = await first
            # a retry after the refusal succeeds (queue drained)
            retry = await service.plan(PlanRequest(experiment=fields_pool[1]))
            return response, retry

        response, retry = run(scenario())
        executor.shutdown(wait=True)

        assert response.cache_state == "miss"  # the admitted job finished
        assert retry.cache_state == "miss"
        counters = service.metrics.snapshot()["counters"]
        assert counters["overloads"] == 1
        assert counters["planning_jobs"] == 2

    def test_coalesced_requests_bypass_admission(self, fields):
        """Joining an in-flight job costs no queue slot: K identical
        requests never trip a max_pending=1 bound."""
        planner = GatedPlanner()
        executor = ThreadPoolExecutor(max_workers=2)
        service = PlannerService(
            executor=executor, plan_fn=planner, max_pending=1
        )
        request = PlanRequest(experiment=fields)

        async def scenario():
            tasks = [asyncio.create_task(service.plan(request)) for _ in range(5)]
            await asyncio.to_thread(planner.entered.wait, 30)
            planner.release.set()
            return await asyncio.gather(*tasks)

        responses = run(scenario())
        executor.shutdown(wait=True)
        assert all(r.plan for r in responses)
        assert service.metrics.snapshot()["counters"].get("overloads", 0) == 0

    def test_max_pending_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="max_pending"):
            PlannerService(max_pending=0, pool="thread").close_sync()


class TestVerifiedServing:
    def test_cache_flow_miss_hit(self, tmp_path, fields):
        cache = ShardedPlanCache(tmp_path, shards=2)
        service = PlannerService(cache, pool="thread", pool_workers=1)
        request = PlanRequest(experiment=fields)

        first = run(service.plan(request))
        second = run(service.plan(request))
        service.close_sync()

        assert (first.cache_state, second.cache_state) == ("miss", "hit")
        assert dict(first.plan) == dict(second.plan)
        assert first.spec_hash == spec_hash_for_fields(fields)

    def test_poisoned_entry_rejected_then_replanned(self, tmp_path, fields):
        """A tampered cache entry must never be served: the service
        purges it, replans, and re-stores a clean plan."""
        cache = ShardedPlanCache(tmp_path, shards=2)
        service = PlannerService(cache, pool="thread", pool_workers=1)
        request = PlanRequest(experiment=fields)
        key = request.spec_hash()

        run(service.plan(request))
        clean = plan_payload_for_fields(fields)
        poisoned = json.loads(json.dumps(clean))
        poisoned["domains"][0]["buffer_bytes"] = 10**12
        cache.put(key, poisoned)

        served = run(service.plan(request))
        assert served.cache_state == "rejected"
        assert dict(served.plan) == clean  # fresh, not the poisoned bytes
        assert cache.rejects == 1
        # the rebuilt plan was re-stored and now verifies
        assert run(service.plan(request)).cache_state == "hit"
        service.close_sync()

    def test_metrics_payload_shape(self, tmp_path, fields):
        cache = ShardedPlanCache(tmp_path, shards=2)
        service = PlannerService(cache, pool="thread", pool_workers=1)
        run(service.plan(PlanRequest(experiment=fields)))
        payload = service.metrics_payload()
        service.close_sync()

        assert payload["counters"]["planning_jobs"] == 1
        assert payload["cache"]["entries"] == 1
        assert payload["max_pending"] == service.max_pending
        assert "evictions" in payload["counters"]
        assert "telemetry" in payload
