"""Tests for the exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro.util import (
    CollectiveIOError,
    CommunicatorError,
    ConfigurationError,
    DatatypeError,
    FileSystemError,
    FileViewError,
    MemoryPressureError,
    PartitionError,
    PlacementError,
    ReproError,
    ResourceError,
    SimulationError,
    StripingError,
    WorkloadError,
)

ALL_ERRORS = [
    ConfigurationError,
    SimulationError,
    ResourceError,
    FileSystemError,
    StripingError,
    DatatypeError,
    FileViewError,
    CommunicatorError,
    CollectiveIOError,
    PartitionError,
    PlacementError,
    MemoryPressureError,
    WorkloadError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_value_error_compatibility():
    """Config/validation errors double as ValueError for stdlib callers."""
    for exc in (ConfigurationError, DatatypeError, FileViewError, WorkloadError, StripingError):
        assert issubclass(exc, ValueError)


def test_runtime_error_compatibility():
    for exc in (SimulationError, FileSystemError, CommunicatorError, CollectiveIOError):
        assert issubclass(exc, RuntimeError)


def test_specialization_chains():
    assert issubclass(PartitionError, CollectiveIOError)
    assert issubclass(PlacementError, CollectiveIOError)
    assert issubclass(MemoryPressureError, CollectiveIOError)
    assert issubclass(ResourceError, SimulationError)
    assert issubclass(StripingError, FileSystemError)
