"""Tests for deterministic RNG utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util import child_rng, make_rng, truncated_normal


class TestMakeRng:
    def test_default_seed_reproducible(self):
        a = make_rng().random(5)
        b = make_rng().random(5)
        assert np.array_equal(a, b)

    def test_explicit_seed(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        c = make_rng(43).random(5)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)


class TestChildRng:
    def test_same_tag_same_stream(self):
        root = make_rng(1)
        a = child_rng(root, "memory").random(4)
        b = child_rng(make_rng(1), "memory").random(4)
        assert np.array_equal(a, b)

    def test_different_tags_differ(self):
        root = make_rng(1)
        a = child_rng(root, "memory").random(4)
        b = child_rng(root, "workload").random(4)
        assert not np.array_equal(a, b)

    def test_independent_of_parent_draws(self):
        r1 = make_rng(9)
        r1.random(100)  # consume parent state
        a = child_rng(r1, "x").random(4)
        b = child_rng(make_rng(9), "x").random(4)
        assert np.array_equal(a, b)


class TestTruncatedNormal:
    def test_respects_bounds(self):
        rng = make_rng(5)
        samples = truncated_normal(rng, mean=10, std=50, low=0, high=100, size=1000)
        assert samples.min() >= 0
        assert samples.max() <= 100

    def test_degenerate_std_zero(self):
        rng = make_rng(5)
        samples = truncated_normal(rng, mean=7, std=0, low=0, high=10, size=10)
        assert np.allclose(samples, 7)

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            truncated_normal(make_rng(), 0, -1, 0, 1, 1)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            truncated_normal(make_rng(), 0, 1, 5, 4, 1)

    def test_clipping_shifts_mass_to_bounds(self):
        rng = make_rng(5)
        samples = truncated_normal(rng, mean=0, std=50, low=0, high=1000, size=2000)
        # Roughly half the normal mass is below 0 and lands exactly at 0.
        assert (samples == 0).mean() > 0.3
