"""Unit + property tests for the extent algebra (the system's bedrock)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import Extent, ExtentList, ReproError


# ------------------------------------------------------------------ Extent
class TestExtent:
    def test_end_and_emptiness(self):
        e = Extent(10, 5)
        assert e.end == 15
        assert not e.is_empty
        assert Extent(3, 0).is_empty

    def test_negative_length_rejected(self):
        with pytest.raises(ReproError):
            Extent(0, -1)

    def test_negative_offset_rejected(self):
        with pytest.raises(ReproError):
            Extent(-5, 1)

    def test_overlaps(self):
        assert Extent(0, 10).overlaps(Extent(9, 5))
        assert not Extent(0, 10).overlaps(Extent(10, 5))
        assert not Extent(10, 5).overlaps(Extent(0, 10))

    def test_contains(self):
        e = Extent(5, 5)
        assert e.contains(5)
        assert e.contains(9)
        assert not e.contains(10)
        assert not e.contains(4)

    def test_intersect(self):
        a = Extent(0, 10)
        b = Extent(5, 10)
        assert a.intersect(b) == Extent(5, 5)
        assert a.intersect(Extent(20, 5)).is_empty

    def test_shift(self):
        assert Extent(5, 3).shift(10) == Extent(15, 3)

    def test_split_at(self):
        left, right = Extent(0, 10).split_at(4)
        assert left == Extent(0, 4)
        assert right == Extent(4, 6)

    def test_split_at_boundary_rejected(self):
        with pytest.raises(ReproError):
            Extent(0, 10).split_at(0)
        with pytest.raises(ReproError):
            Extent(0, 10).split_at(10)


# -------------------------------------------------------------- ExtentList
class TestExtentListBasics:
    def test_empty(self):
        el = ExtentList.empty()
        assert el.is_empty
        assert el.total == 0
        assert len(el) == 0
        assert el.envelope().is_empty

    def test_single(self):
        el = ExtentList.single(10, 5)
        assert el.to_pairs() == [(10, 5)]
        assert el.total == 5

    def test_single_zero_length_is_empty(self):
        assert ExtentList.single(10, 0).is_empty

    def test_coalescing_of_touching_extents(self):
        el = ExtentList.from_pairs([(0, 10), (10, 5)])
        assert el.to_pairs() == [(0, 15)]

    def test_coalescing_of_overlapping_extents(self):
        el = ExtentList.from_pairs([(0, 10), (5, 10)])
        assert el.to_pairs() == [(0, 15)]

    def test_sorting(self):
        el = ExtentList.from_pairs([(20, 5), (0, 5)])
        assert el.to_pairs() == [(0, 5), (20, 5)]

    def test_zero_length_inputs_dropped(self):
        el = ExtentList.from_pairs([(0, 0), (5, 3), (9, 0)])
        assert el.to_pairs() == [(5, 3)]

    def test_negative_offset_rejected(self):
        with pytest.raises(ReproError):
            ExtentList.from_pairs([(-1, 5)])

    def test_negative_length_rejected(self):
        with pytest.raises(ReproError):
            ExtentList.from_pairs([(0, -5)])

    def test_equality_and_hash(self):
        a = ExtentList.from_pairs([(0, 5), (10, 5)])
        b = ExtentList.from_pairs([(10, 5), (0, 5)])
        assert a == b
        assert hash(a) == hash(b)

    def test_indexing_and_iteration(self):
        el = ExtentList.from_pairs([(0, 5), (10, 5)])
        assert el[0] == Extent(0, 5)
        assert el[1] == Extent(10, 5)
        assert list(el) == [Extent(0, 5), Extent(10, 5)]

    def test_envelope(self):
        el = ExtentList.from_pairs([(10, 5), (100, 7)])
        assert el.envelope() == Extent(10, 97)


class TestExtentListAlgebra:
    def test_intersect_basic(self):
        a = ExtentList.from_pairs([(0, 10), (20, 10)])
        b = ExtentList.from_pairs([(5, 20)])
        assert a.intersect(b).to_pairs() == [(5, 5), (20, 5)]

    def test_intersect_empty(self):
        a = ExtentList.from_pairs([(0, 10)])
        assert a.intersect(ExtentList.empty()).is_empty
        assert ExtentList.empty().intersect(a).is_empty

    def test_intersect_disjoint(self):
        a = ExtentList.from_pairs([(0, 10)])
        b = ExtentList.from_pairs([(10, 10)])
        assert a.intersect(b).is_empty

    def test_clip(self):
        a = ExtentList.from_pairs([(0, 10), (20, 10)])
        assert a.clip(5, 20).to_pairs() == [(5, 5), (20, 5)]
        assert a.clip(10, 10).is_empty
        assert a.clip(0, 0).is_empty

    def test_subtract(self):
        a = ExtentList.from_pairs([(0, 30)])
        b = ExtentList.from_pairs([(10, 10)])
        assert a.subtract(b).to_pairs() == [(0, 10), (20, 10)]

    def test_subtract_everything(self):
        a = ExtentList.from_pairs([(5, 10)])
        assert a.subtract(ExtentList.from_pairs([(0, 100)])).is_empty

    def test_complement(self):
        a = ExtentList.from_pairs([(10, 10), (30, 10)])
        assert a.complement(0, 50).to_pairs() == [(0, 10), (20, 10), (40, 10)]

    def test_complement_of_empty(self):
        assert ExtentList.empty().complement(5, 15).to_pairs() == [(5, 10)]

    def test_union(self):
        a = ExtentList.from_pairs([(0, 10)])
        b = ExtentList.from_pairs([(5, 10)])
        assert a.union(b).to_pairs() == [(0, 15)]

    def test_shift(self):
        a = ExtentList.from_pairs([(0, 5), (10, 5)])
        assert a.shift(100).to_pairs() == [(100, 5), (110, 5)]

    def test_shift_negative_below_zero_rejected(self):
        with pytest.raises(ReproError):
            ExtentList.from_pairs([(5, 5)]).shift(-10)

    def test_covers(self):
        a = ExtentList.from_pairs([(0, 100)])
        b = ExtentList.from_pairs([(10, 5), (50, 5)])
        assert a.covers(b)
        assert not b.covers(a)

    def test_overlap_bytes(self):
        a = ExtentList.from_pairs([(0, 10)])
        b = ExtentList.from_pairs([(5, 10)])
        assert a.overlap_bytes(b) == 5


class TestSliceAndRank:
    def test_slice_bytes_simple(self):
        el = ExtentList.from_pairs([(0, 10), (20, 10)])
        assert el.slice_bytes(0, 10).to_pairs() == [(0, 10)]
        assert el.slice_bytes(10, 20).to_pairs() == [(20, 10)]
        assert el.slice_bytes(5, 15).to_pairs() == [(5, 5), (20, 5)]

    def test_slice_bytes_empty_range(self):
        el = ExtentList.from_pairs([(0, 10)])
        assert el.slice_bytes(5, 5).is_empty
        assert el.slice_bytes(7, 3).is_empty

    def test_slice_bytes_beyond_end(self):
        el = ExtentList.from_pairs([(0, 10)])
        assert el.slice_bytes(8, 100).to_pairs() == [(8, 2)]
        assert el.slice_bytes(100, 200).is_empty

    def test_bytes_before(self):
        el = ExtentList.from_pairs([(0, 10), (20, 10)])
        assert el.bytes_before(0) == 0
        assert el.bytes_before(5) == 5
        assert el.bytes_before(15) == 10
        assert el.bytes_before(25) == 15
        assert el.bytes_before(100) == 20


class TestSplitToBins:
    def test_basic(self):
        el = ExtentList.from_pairs([(0, 25)])
        bins, ps, pe = el.split_to_bins(np.asarray([0, 8, 16, 32]))
        assert bins.tolist() == [0, 1, 2]
        assert ps.tolist() == [0, 8, 16]
        assert pe.tolist() == [8, 16, 25]

    def test_multi_extent(self):
        el = ExtentList.from_pairs([(2, 4), (9, 2), (14, 10)])
        bins, ps, pe = el.split_to_bins(np.asarray([0, 8, 16, 32]))
        got = list(zip(bins.tolist(), ps.tolist(), pe.tolist()))
        assert got == [(0, 2, 6), (1, 9, 11), (1, 14, 16), (2, 16, 24)]

    def test_out_of_bins_bytes_dropped(self):
        el = ExtentList.from_pairs([(0, 100)])
        bins, ps, pe = el.split_to_bins(np.asarray([10, 20]))
        assert ps.tolist() == [10]
        assert pe.tolist() == [20]

    def test_single_bin_required(self):
        el = ExtentList.from_pairs([(0, 10)])
        with pytest.raises(ReproError):
            el.split_to_bins(np.asarray([0]))


# --------------------------------------------------------------- properties
pairs_strategy = st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(0, 500)),
    min_size=0,
    max_size=40,
)


@given(pairs_strategy)
def test_normalization_invariant(pairs):
    el = ExtentList.from_pairs(pairs)
    starts, ends = el.starts, el.ends
    assert np.all(ends > starts)  # non-empty
    # sorted and strictly separated (coalesced)
    assert np.all(starts[1:] > ends[:-1])


@given(pairs_strategy, pairs_strategy)
def test_intersection_commutes(p1, p2):
    a, b = ExtentList.from_pairs(p1), ExtentList.from_pairs(p2)
    assert a.intersect(b) == b.intersect(a)


@given(pairs_strategy, pairs_strategy)
def test_intersection_subset_of_operands(p1, p2):
    a, b = ExtentList.from_pairs(p1), ExtentList.from_pairs(p2)
    i = a.intersect(b)
    assert a.covers(i)
    assert b.covers(i)


@given(pairs_strategy, pairs_strategy)
def test_subtract_plus_intersect_partitions(p1, p2):
    a, b = ExtentList.from_pairs(p1), ExtentList.from_pairs(p2)
    inter = a.intersect(b)
    diff = a.subtract(b)
    assert inter.total + diff.total == a.total
    assert inter.intersect(diff).is_empty
    assert inter.union(diff) == a


@given(pairs_strategy)
def test_complement_partitions_envelope(pairs):
    el = ExtentList.from_pairs(pairs)
    if el.is_empty:
        return
    env = el.envelope()
    comp = el.complement(env.offset, env.end)
    assert comp.intersect(el).is_empty
    assert comp.total + el.total == env.length


@given(pairs_strategy, st.integers(0, 600), st.integers(0, 600))
def test_slice_bytes_total(pairs, lo, span):
    el = ExtentList.from_pairs(pairs)
    hi = lo + span
    part = el.slice_bytes(lo, hi)
    expected = max(0, min(hi, el.total) - min(lo, el.total))
    assert part.total == expected
    assert el.covers(part)


@given(pairs_strategy)
def test_slices_tile_the_set(pairs):
    el = ExtentList.from_pairs(pairs)
    chunk = 37
    pieces = [
        el.slice_bytes(i, i + chunk) for i in range(0, el.total + chunk, chunk)
    ]
    union = ExtentList.union_all(pieces)
    assert union == el
    assert sum(p.total for p in pieces) == el.total


@given(pairs_strategy, st.lists(st.integers(0, 10_500), min_size=2, max_size=10))
def test_split_to_bins_conserves_bytes(pairs, raw_bounds):
    el = ExtentList.from_pairs(pairs)
    bounds = np.unique(np.asarray(sorted(raw_bounds), dtype=np.int64))
    if bounds.size < 2:
        return
    bins, ps, pe = el.split_to_bins(bounds)
    clipped = el.clip(int(bounds[0]), int(bounds[-1] - bounds[0]))
    assert int((pe - ps).sum()) == clipped.total
    assert np.all(pe > ps)
    # every piece inside its bin
    assert np.all(ps >= bounds[bins])
    assert np.all(pe <= bounds[bins + 1])


@given(pairs_strategy, st.integers(0, 10_000))
def test_bytes_before_matches_clip(pairs, offset):
    el = ExtentList.from_pairs(pairs)
    assert el.bytes_before(offset) == el.clip(0, offset).total
