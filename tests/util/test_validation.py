"""Tests for argument-validation helpers."""

from __future__ import annotations

import pytest

from repro.util import (
    ConfigurationError,
    check_in_range,
    check_non_negative,
    check_positive,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ConfigurationError, match="broken"):
            require(False, "broken")


class TestCheckPositive:
    def test_returns_value(self):
        assert check_positive("x", 3) == 3
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects(self, bad):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("y", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError, match="y"):
            check_non_negative("y", -1)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range("z", 1, 1, 5) == 1
        assert check_in_range("z", 5, 1, 5) == 5

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError, match="z"):
            check_in_range("z", 6, 1, 5)
