"""Tests for byte/bandwidth unit helpers."""

from __future__ import annotations

from repro.util import (
    GiB,
    KiB,
    MiB,
    TiB,
    GB_per_s,
    MB_per_s,
    TB_per_s,
    fmt_bytes,
    fmt_rate,
    gib,
    kib,
    mib,
    tib,
)


class TestConstants:
    def test_powers_of_two(self):
        assert KiB == 2**10
        assert MiB == 2**20
        assert GiB == 2**30
        assert TiB == 2**40


class TestConverters:
    def test_integer_results(self):
        assert kib(4) == 4096
        assert mib(2) == 2 * MiB
        assert gib(1) == GiB
        assert tib(1) == TiB

    def test_fractional_inputs_truncate(self):
        assert kib(1.5) == 1536
        assert mib(0.5) == MiB // 2

    def test_rates(self):
        assert MB_per_s(1) == float(MiB)
        assert GB_per_s(2) == 2.0 * GiB
        assert TB_per_s(1) == float(TiB)


class TestFormatting:
    def test_fmt_bytes_small(self):
        assert fmt_bytes(512) == "512 B"

    def test_fmt_bytes_scales(self):
        assert fmt_bytes(1536) == "1.50 KiB"
        assert fmt_bytes(3 * MiB) == "3.00 MiB"
        assert fmt_bytes(5 * GiB) == "5.00 GiB"

    def test_fmt_rate(self):
        assert fmt_rate(MB_per_s(100)) == "100.00 MiB/s"
        assert fmt_rate(GB_per_s(2)) == "2.00 GiB/s"
