"""Tests for metrics: comparisons, memory summaries, reporting."""

from __future__ import annotations

import pytest

from repro.io.result import AggregatorInfo, CollectiveResult
from repro.metrics import (
    RunComparison,
    bandwidth_table,
    improvement,
    memory_summary,
    render_table,
)
from repro.util import MiB


def result(bw_mib, nbytes=100 * MiB, n_aggs=4, buffers=None):
    elapsed = nbytes / (bw_mib * MiB)
    aggs = [
        AggregatorInfo(
            rank=i,
            node_id=i,
            domain_bytes=nbytes // n_aggs,
            buffer_bytes=(buffers[i] if buffers else 4 * MiB),
            rounds=2,
        )
        for i in range(n_aggs)
    ]
    return CollectiveResult(
        kind="write",
        strategy="x",
        elapsed=elapsed,
        nbytes=nbytes,
        n_rounds=2,
        aggregators=aggs,
    )


class TestImprovement:
    def test_positive(self):
        assert improvement(result(134.2), result(100)) == pytest.approx(
            0.342, rel=1e-3
        )

    def test_zero_baseline(self):
        zero = CollectiveResult("write", "x", 0.0, 0, 0)
        assert improvement(result(100), zero) == float("inf")


class TestMemorySummary:
    def test_summary_fields(self):
        res = result(100, buffers=[MiB, 2 * MiB, 3 * MiB, 2 * MiB])
        summ = memory_summary(res)
        assert summ.total_buffer_bytes == 8 * MiB
        assert summ.max_buffer_bytes == 3 * MiB
        assert summ.mean_buffer_bytes == pytest.approx(2 * MiB)
        assert summ.n_aggregators == 4
        assert summ.std_buffer_bytes > 0

    def test_empty(self):
        res = CollectiveResult("write", "x", 1.0, 100, 1)
        summ = memory_summary(res)
        assert summ.total_buffer_bytes == 0
        assert summ.n_aggregators == 0


class TestCollectiveResultProps:
    def test_bandwidth(self):
        res = result(250)
        assert res.bandwidth == pytest.approx(250 * MiB)

    def test_buffer_statistics(self):
        res = result(100, buffers=[MiB, 3 * MiB, MiB, 3 * MiB])
        assert res.buffer_mean == pytest.approx(2 * MiB)
        assert res.buffer_max == 3 * MiB
        assert res.buffer_std == pytest.approx(MiB)

    def test_inter_node_fraction(self):
        res = CollectiveResult(
            "write", "x", 1.0, 100, 1,
            shuffle_intra_bytes=30, shuffle_inter_bytes=70,
        )
        assert res.inter_node_fraction == pytest.approx(0.7)
        assert res.shuffle_bytes == 100

    def test_summary_string(self):
        text = result(100).summary()
        assert "MiB/s" in text
        assert "aggregators" in text


class TestRunComparison:
    def test_average_improvement(self):
        cmp = RunComparison(
            axis_name="mem",
            axis_values=[2, 4],
            baseline=[result(100), result(200)],
            mc=[result(150), result(260)],
        )
        assert cmp.average_improvement == pytest.approx((0.5 + 0.3) / 2)
        best, axis = cmp.best_improvement
        assert best == pytest.approx(0.5)
        assert axis == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RunComparison("m", [1], [result(1)], [])

    def test_bandwidth_rows(self):
        cmp = RunComparison("m", [2], [result(100)], [result(120)])
        ((axis, base, mc, imp),) = cmp.bandwidth_rows()
        assert axis == 2
        assert imp == pytest.approx(0.2)


class TestRendering:
    def test_render_table_aligns(self):
        out = render_table(
            ["a", "bb"], [[1, 2], [333, 4]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_bandwidth_table(self):
        cmp = RunComparison("mem", [2 * MiB], [result(100)], [result(150)])
        out = bandwidth_table("mem", cmp.bandwidth_rows(), title="Fig")
        assert "Fig" in out
        assert "+50.0%" in out
        assert "2 MiB" in out
