"""Tests for result/trace JSON serialization."""

from __future__ import annotations

import pytest

from repro.cluster import scaled_testbed
from repro.io import CollectiveHints, TwoPhaseCollectiveIO, make_context
from repro.io.result import CollectiveResult
from repro.metrics.export import (
    dump_results,
    load_results,
    load_telemetries,
    result_to_dict,
    telemetry_from_dict,
)
from repro.sim import TraceRecorder
from repro.util import kib
from repro.workloads import IORWorkload


@pytest.fixture
def result():
    machine = scaled_testbed(2, cores_per_node=4)
    ctx = make_context(
        machine, 4, procs_per_node=2, seed=1,
        hints=CollectiveHints(cb_buffer_size=kib(64)),
    )
    wl = IORWorkload(4, block_size=kib(64), transfer_size=kib(16))
    return TwoPhaseCollectiveIO().write(ctx, ctx.pfs.open("f"), wl.requests())


class TestResultToDict:
    def test_fields(self, result):
        d = result_to_dict(result)
        assert d["strategy"] == "two-phase"
        assert d["nbytes"] == 4 * kib(64)
        assert d["bandwidth_Bps"] == pytest.approx(result.bandwidth)
        assert len(d["aggregators"]) == result.n_aggregators
        assert any(p["name"] == "transfer" for p in d["trace"])

    def test_resource_keys_stringified(self, result):
        d = result_to_dict(result)
        transfer = next(p for p in d["trace"] if p["name"] == "transfer")
        assert all(isinstance(k, str) for k in transfer["resource_bytes"])
        assert any(k.startswith("ost:") for k in transfer["resource_bytes"])

    def test_json_round_trip(self, result, tmp_path):
        path = dump_results(tmp_path / "out.json", [result], seed=1, note="x")
        doc = load_results(path)
        assert doc["metadata"] == {"seed": 1, "note": "x"}
        assert len(doc["results"]) == 1
        assert doc["results"][0]["n_rounds"] == result.n_rounds


class TestMetaPreservation:
    """Regression: nested trace meta (dicts like the per-resource byte
    maps the round engine records) must survive serialization — it used
    to be silently dropped, so load was not an inverse of dump."""

    def _result_with_nested_meta(self):
        trace = TraceRecorder()
        trace.record(
            "transfer",
            1.0,
            resource_bytes={("ost", 0): 5.0},
            per_node_bytes={("membw", 0): 10.0, ("membw", 1): 20.0},
            rounds=3,
            tags=["a", "b"],
        )
        return CollectiveResult(
            kind="write", strategy="t", elapsed=1.0, nbytes=5,
            n_rounds=3, trace=trace,
        )

    def test_nested_meta_survives_result_to_dict(self):
        d = result_to_dict(self._result_with_nested_meta())
        meta = d["trace"][0]["meta"]
        assert meta["per_node_bytes"] == {"membw:0": 10.0, "membw:1": 20.0}
        assert meta["tags"] == ["a", "b"]
        assert meta["rounds"] == 3

    def test_nested_meta_survives_file_round_trip(self, tmp_path):
        result = self._result_with_nested_meta()
        path = dump_results(tmp_path / "out.json", [result])
        loaded = load_results(path)["results"][0]
        assert loaded["trace"][0]["meta"] == result_to_dict(result)["trace"][0]["meta"]


class TestTelemetryRoundTrip:
    def test_telemetry_embedded_and_lossless(self, result, tmp_path):
        assert result.telemetry is not None
        path = dump_results(tmp_path / "out.json", [result])
        loaded = load_results(path)["results"][0]
        rebuilt = telemetry_from_dict(loaded["telemetry"])
        assert rebuilt.to_dict() == result.telemetry.to_dict()
        assert rebuilt.shuffle_intra_bytes == result.shuffle_intra_bytes
        assert rebuilt.shuffle_inter_bytes == result.shuffle_inter_bytes
        assert rebuilt.capacities == result.telemetry.capacities

    def test_load_telemetries_pairs(self, result, tmp_path):
        path = dump_results(tmp_path / "out.json", [result, result])
        pairs = load_telemetries(path)
        assert len(pairs) == 2
        for entry, tele in pairs:
            assert entry["strategy"] == "two-phase"
            assert tele is not None
            assert tele.n_rounds == entry["n_rounds"]
