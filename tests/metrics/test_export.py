"""Tests for result/trace JSON serialization."""

from __future__ import annotations

import pytest

from repro.cluster import scaled_testbed
from repro.io import CollectiveHints, TwoPhaseCollectiveIO, make_context
from repro.metrics.export import dump_results, load_results, result_to_dict
from repro.util import kib
from repro.workloads import IORWorkload


@pytest.fixture
def result():
    machine = scaled_testbed(2, cores_per_node=4)
    ctx = make_context(
        machine, 4, procs_per_node=2, seed=1,
        hints=CollectiveHints(cb_buffer_size=kib(64)),
    )
    wl = IORWorkload(4, block_size=kib(64), transfer_size=kib(16))
    return TwoPhaseCollectiveIO().write(ctx, ctx.pfs.open("f"), wl.requests())


class TestResultToDict:
    def test_fields(self, result):
        d = result_to_dict(result)
        assert d["strategy"] == "two-phase"
        assert d["nbytes"] == 4 * kib(64)
        assert d["bandwidth_Bps"] == pytest.approx(result.bandwidth)
        assert len(d["aggregators"]) == result.n_aggregators
        assert any(p["name"] == "transfer" for p in d["trace"])

    def test_resource_keys_stringified(self, result):
        d = result_to_dict(result)
        transfer = next(p for p in d["trace"] if p["name"] == "transfer")
        assert all(isinstance(k, str) for k in transfer["resource_bytes"])
        assert any(k.startswith("ost:") for k in transfer["resource_bytes"])

    def test_json_round_trip(self, result, tmp_path):
        path = dump_results(tmp_path / "out.json", [result], seed=1, note="x")
        doc = load_results(path)
        assert doc["metadata"] == {"seed": 1, "note": "x"}
        assert len(doc["results"]) == 1
        assert doc["results"][0]["n_rounds"] == result.n_rounds
