"""Tests for the round-level telemetry registry."""

from __future__ import annotations

import json

import pytest

from repro.metrics.telemetry import (
    DomainRoundCost,
    RoundRecord,
    Telemetry,
    key_from_str,
    key_to_str,
)


def sample_telemetry() -> Telemetry:
    tele = Telemetry()
    tele.set_capacities({("ost", 0): 100.0, ("membw", 1): 400.0, "bisection": 200.0})
    tele.record_paging(1, 3.0)
    tele.count("remerges", 2)
    tele.count("remerges", 1)
    tele.add_round(
        RoundRecord(
            index=0,
            shuffle_intra_bytes=10,
            shuffle_inter_bytes=30,
            io_bytes=40,
            latency_s=0.25,
            max_messages=8,
            shuffle_resource_bytes={("membw", 1): 40.0, "bisection": 30.0},
            io_resource_bytes={("ost", 0): 40.0},
            domain_costs=[
                DomainRoundCost(0, shuffle_s=0.1, io_s=0.4, sync_s=0.05, messages=8)
            ],
        )
    )
    tele.add_round(
        RoundRecord(
            index=1,
            shuffle_intra_bytes=5,
            io_bytes=5,
            latency_s=0.1,
            max_messages=1,
            shuffle_resource_bytes={("membw", 1): 10.0},
            io_resource_bytes={("ost", 0): 5.0},
            domain_costs=[
                DomainRoundCost(0, shuffle_s=0.02, io_s=0.05, sync_s=0.05, messages=1)
            ],
        )
    )
    return tele


class TestKeys:
    @pytest.mark.parametrize(
        "key",
        [("ost", 3), ("membw", 0), ("nic_in", 12), "bisection",
         ("stream", 7), ("a", "b", 2)],
    )
    def test_round_trip(self, key):
        assert key_from_str(key_to_str(key)) == key

    def test_negative_int_part(self):
        assert key_from_str(key_to_str(("x", -4))) == ("x", -4)


class TestAggregates:
    def test_byte_totals(self):
        tele = sample_telemetry()
        assert tele.shuffle_intra_bytes == 15
        assert tele.shuffle_inter_bytes == 30
        assert tele.io_bytes == 45
        assert tele.total_bytes == 90
        assert tele.latency_s == pytest.approx(0.35)
        assert tele.n_rounds == 2

    def test_counters_accumulate(self):
        tele = sample_telemetry()
        assert tele.counters["remerges"] == 3

    def test_resource_totals_merge_phases(self):
        totals = sample_telemetry().resource_totals()
        assert totals[("membw", 1)] == pytest.approx(50.0)
        assert totals[("ost", 0)] == pytest.approx(45.0)
        assert totals["bisection"] == pytest.approx(30.0)

    def test_utilization_shares_bottleneck_is_one(self):
        tele = sample_telemetry()
        shares = tele.utilization_shares()
        # ost drains 45/100 = 0.45 s — the slowest resource.
        assert shares[("ost", 0)] == pytest.approx(1.0)
        assert shares[("membw", 1)] == pytest.approx((50 / 400) / 0.45)
        assert all(0 <= s <= 1 for s in shares.values())

    def test_timeline_shape(self):
        tele = sample_telemetry()
        timeline = tele.timeline()
        assert [e["round"] for e in timeline] == [0, 1]
        first = timeline[0]
        assert first["bottleneck_s"] == pytest.approx(0.4)  # ost 40/100
        assert first["latency_s"] == pytest.approx(0.25)
        assert first["sync_s"] == pytest.approx(0.05)
        # The bottleneck resource is fully busy; others fractional.
        assert first["shares"][("ost", 0)] == pytest.approx(1.0)
        assert 0 < first["shares"][("membw", 1)] < 1


class TestSerialization:
    def test_dict_round_trip_is_lossless(self):
        tele = sample_telemetry()
        rebuilt = Telemetry.from_dict(tele.to_dict())
        assert rebuilt.to_dict() == tele.to_dict()
        assert rebuilt.capacities == tele.capacities
        assert rebuilt.paging == tele.paging
        assert rebuilt.rounds[0].shuffle_resource_bytes == {
            ("membw", 1): 40.0,
            "bisection": 30.0,
        }
        assert rebuilt.rounds[0].domain_costs[0].messages == 8

    def test_json_round_trip_is_lossless(self):
        tele = sample_telemetry()
        rebuilt = Telemetry.from_dict(json.loads(json.dumps(tele.to_dict())))
        assert rebuilt.to_dict() == tele.to_dict()

    def test_csv_rows(self):
        tele = sample_telemetry()
        lines = tele.to_csv().strip().splitlines()
        assert lines[0] == "round,resource,phase,bytes,capacity"
        # 3 shuffle charges + 2 io charges across the two rounds.
        assert len(lines) == 1 + 5
        assert any(line.startswith("0,ost:0,io,40.0") for line in lines)
        assert any(line.startswith("1,membw:1,shuffle,10.0") for line in lines)
