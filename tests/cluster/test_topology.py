"""Tests for cluster topology and rank placement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, scaled_testbed
from repro.util import CommunicatorError, ConfigurationError, make_rng, mib


@pytest.fixture
def machine():
    return scaled_testbed(8, cores_per_node=4)


class TestPlacement:
    def test_block_placement(self, machine):
        cl = Cluster(machine, 8, procs_per_node=2, placement="block")
        assert cl.rank_to_node.tolist() == [0, 0, 1, 1, 2, 2, 3, 3]
        assert cl.n_nodes == 4

    def test_cyclic_placement(self, machine):
        cl = Cluster(machine, 8, procs_per_node=2, placement="cyclic")
        assert cl.rank_to_node.tolist() == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_partial_last_node(self, machine):
        cl = Cluster(machine, 5, procs_per_node=2)
        assert cl.n_nodes == 3
        assert cl.ranks_on_node(2).tolist() == [4]

    def test_ranks_on_node_matches_node_of_rank(self, machine):
        cl = Cluster(machine, 8, procs_per_node=3)
        for node in cl.nodes:
            for rank in cl.ranks_on_node(node.node_id):
                assert cl.node_id_of_rank(int(rank)) == node.node_id

    def test_too_many_procs_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            Cluster(machine, 1000, procs_per_node=2)

    def test_oversubscribed_cores_rejected(self, machine):
        with pytest.raises(ConfigurationError):
            Cluster(machine, 4, procs_per_node=100)

    def test_bad_rank_rejected(self, machine):
        cl = Cluster(machine, 4, procs_per_node=2)
        with pytest.raises(CommunicatorError):
            cl.node_of_rank(99)
        with pytest.raises(CommunicatorError):
            cl.node_id_of_rank(-1)


class TestMemoryVariance:
    def test_uniform_available(self, machine):
        cl = Cluster(machine, 8, procs_per_node=2)
        cl.set_uniform_available(mib(64))
        assert np.all(cl.available_by_node() == mib(64))

    def test_uniform_out_of_range_rejected(self, machine):
        cl = Cluster(machine, 8, procs_per_node=2)
        with pytest.raises(ConfigurationError):
            cl.set_uniform_available(-1)

    def test_variance_is_seeded_and_bounded(self, machine):
        cl1 = Cluster(machine, 8, procs_per_node=2)
        cl2 = Cluster(machine, 8, procs_per_node=2)
        s1 = cl1.apply_memory_variance(
            make_rng(5), mean_available=mib(16), std=mib(50)
        )
        s2 = cl2.apply_memory_variance(
            make_rng(5), mean_available=mib(16), std=mib(50)
        )
        assert np.array_equal(s1, s2)
        assert np.all(s1 >= 0)
        assert np.all(s1 <= machine.node.mem_capacity)
        assert np.array_equal(cl1.available_by_node(), s1)

    def test_release_all(self, machine):
        cl = Cluster(machine, 4, procs_per_node=2)
        cl.nodes[0].memory.allocate("x", mib(1))
        cl.release_all()
        assert cl.nodes[0].memory.in_use == 0
