"""Tests for the interconnect resource/latency model."""

from __future__ import annotations

import pytest

from repro.cluster import (
    BISECTION,
    Cluster,
    NetworkModel,
    membw,
    nic_in,
    nic_out,
    scaled_testbed,
)


@pytest.fixture
def setup():
    machine = scaled_testbed(4, cores_per_node=4)
    cluster = Cluster(machine, 8, procs_per_node=2)
    return machine, cluster, NetworkModel(machine)


class TestCapacityMap:
    def test_contains_all_node_resources(self, setup):
        machine, cluster, net = setup
        caps = net.capacity_map(cluster)
        assert caps[BISECTION] == machine.bisection_bandwidth
        for node in cluster.nodes:
            assert caps[nic_out(node.node_id)] == machine.node.nic_bandwidth
            assert caps[nic_in(node.node_id)] == machine.node.nic_bandwidth
            assert caps[membw(node.node_id)] == machine.node.mem_bandwidth

    def test_key_helpers_distinct(self):
        assert nic_in(1) != nic_out(1)
        assert membw(1) != membw(2)


class TestLatencies:
    def test_message_latency_zero_messages(self, setup):
        _, _, net = setup
        assert net.message_latency(0) == 0.0

    def test_message_latency_grows_sublinearly(self, setup):
        machine, _, net = setup
        one = net.message_latency(1)
        hundred = net.message_latency(100)
        assert one == machine.network_latency
        assert hundred > one
        assert hundred < 100 * one  # pipelined, not serialized

    def test_collective_metadata_time(self, setup):
        _, _, net = setup
        assert net.collective_metadata_time(1, 100) == 0.0
        t2 = net.collective_metadata_time(2, 24)
        t64 = net.collective_metadata_time(64, 24)
        assert 0 < t2 < t64

    def test_barrier_log_steps(self, setup):
        machine, _, net = setup
        assert net.barrier_time(1) == 0.0
        assert net.barrier_time(8) == pytest.approx(3 * machine.network_latency)
        assert net.barrier_time(9) == pytest.approx(4 * machine.network_latency)
