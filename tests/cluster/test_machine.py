"""Tests for machine models and presets."""

from __future__ import annotations

import pytest

from repro.cluster import (
    MachineModel,
    NodeSpec,
    StorageSpec,
    exascale_2018,
    petascale_2010,
    scaled_testbed,
    testbed_640,
)
from repro.util import ConfigurationError, GB_per_s, MB_per_s, gib, mib


class TestNodeSpec:
    def test_mem_per_core(self):
        node = NodeSpec(12, gib(24), GB_per_s(25), GB_per_s(1.5))
        assert node.mem_per_core == pytest.approx(gib(24) / 12)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(0, gib(1), 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            NodeSpec(1, 0, 1.0, 1.0)


class TestStorageSpec:
    def test_aggregate_bandwidth_capped_by_backplane(self):
        s = StorageSpec(
            n_osts=100,
            ost_bandwidth=MB_per_s(100),
            backplane=MB_per_s(500),
            stripe_unit=mib(1),
            request_overhead=1e-3,
        )
        assert s.aggregate_bandwidth == MB_per_s(500)

    def test_aggregate_bandwidth_ost_limited(self):
        s = StorageSpec(
            n_osts=2,
            ost_bandwidth=MB_per_s(100),
            backplane=MB_per_s(500),
            stripe_unit=mib(1),
            request_overhead=1e-3,
        )
        assert s.aggregate_bandwidth == MB_per_s(200)


class TestPresets:
    def test_testbed_matches_paper_platform(self):
        m = testbed_640()
        assert m.n_nodes == 640
        assert m.node.cores == 12  # 2x 6-core Xeon
        assert m.node.mem_capacity == gib(24)
        assert m.storage.stripe_unit == mib(1)  # 1 MB Lustre stripes

    def test_exascale_memory_per_core_is_megabytes(self):
        m = exascale_2018()
        # Table 1: ~10 MB per core at exascale.
        assert m.node.mem_per_core < 20 * 1024 * 1024
        assert m.node.cores == 1000
        assert m.n_nodes == 1_000_000

    def test_petascale_dimensions(self):
        m = petascale_2010()
        assert m.n_nodes == 20_000
        assert m.total_cores == 240_000  # ~225K in Table 1 (rounded grid)

    def test_scaled_testbed_shrinks(self):
        m = scaled_testbed(8)
        assert m.n_nodes == 8
        assert m.storage.n_osts <= 48

    def test_with_storage_and_with_node(self):
        m = testbed_640().with_storage(n_osts=16).with_node(cores=4)
        assert m.storage.n_osts == 16
        assert m.node.cores == 4
        # original untouched (frozen dataclasses)
        assert testbed_640().storage.n_osts == 48
