"""Tests for per-node memory accounting."""

from __future__ import annotations

import pytest

from repro.cluster import MemoryManager
from repro.util import MemoryPressureError, mib


class TestBasics:
    def test_initial_state(self):
        mm = MemoryManager(0, mib(100))
        assert mm.capacity == mib(100)
        assert mm.in_use == 0
        assert mm.available == mib(100)
        assert mm.high_watermark == 0

    def test_reserved_reduces_available(self):
        mm = MemoryManager(0, mib(100), reserved=mib(30))
        assert mm.available == mib(70)

    def test_reserved_beyond_capacity_rejected(self):
        with pytest.raises(MemoryPressureError):
            MemoryManager(0, mib(10), reserved=mib(20))


class TestAllocation:
    def test_allocate_release_cycle(self):
        mm = MemoryManager(0, mib(100))
        mm.allocate("buf", mib(40))
        assert mm.in_use == mib(40)
        assert mm.available == mib(60)
        mm.release("buf")
        assert mm.in_use == 0

    def test_duplicate_tag_rejected(self):
        mm = MemoryManager(0, mib(100))
        mm.allocate("buf", mib(1))
        with pytest.raises(MemoryPressureError):
            mm.allocate("buf", mib(1))

    def test_release_unknown_tag_rejected(self):
        mm = MemoryManager(0, mib(100))
        with pytest.raises(MemoryPressureError):
            mm.release("ghost")

    def test_over_allocation_rejected_by_default(self):
        mm = MemoryManager(0, mib(10))
        with pytest.raises(MemoryPressureError):
            mm.allocate("big", mib(20))

    def test_oversubscribe_allowed_when_requested(self):
        mm = MemoryManager(0, mib(10))
        mm.allocate("big", mib(25), allow_oversubscribe=True)
        assert mm.oversubscribed_bytes == mib(15)
        assert mm.available == -mib(15)

    def test_watermark_tracks_peak(self):
        mm = MemoryManager(0, mib(100))
        mm.allocate("a", mib(30))
        mm.allocate("b", mib(20))
        mm.release("a")
        assert mm.high_watermark == mib(50)
        mm.reset_watermark()
        assert mm.high_watermark == mib(20)

    def test_release_all(self):
        mm = MemoryManager(0, mib(100))
        mm.allocate("a", mib(1))
        mm.allocate("b", mib(2))
        mm.release_all()
        assert mm.in_use == 0

    def test_set_reserved_variance_hook(self):
        mm = MemoryManager(0, mib(100))
        mm.set_reserved(mib(90))
        assert mm.available == mib(10)
        with pytest.raises(MemoryPressureError):
            mm.set_reserved(mib(200))
