"""Tests for slot planning, aggregator placement, remerging, rebalance."""

from __future__ import annotations

import pytest

from repro.core import (
    MemoryConsciousConfig,
    PartitionTree,
    SlotPlan,
    divide_groups,
    place_group,
    rebalance,
)
from repro.core.placement import Assignment, build_domains
from repro.io import make_context
from repro.cluster import scaled_testbed
from repro.mpi import AccessRequest
from repro.util import ExtentList, mib


def make_ctx(n_nodes=4, procs_per_node=2, **kw):
    machine = scaled_testbed(n_nodes, cores_per_node=procs_per_node)
    return make_context(
        machine, n_nodes * procs_per_node, procs_per_node=procs_per_node,
        seed=3, **kw
    )


def serial_requests(n_procs, nbytes):
    return [
        AccessRequest(p, ExtentList.single(p * nbytes, nbytes))
        for p in range(n_procs)
    ]


CFG = MemoryConsciousConfig(
    msg_ind=mib(4), msg_group=mib(64), nah=2, mem_min=mib(1), buffer_floor=mib(1) // 16
)


class TestSlotPlan:
    def test_slots_respect_nah_and_mem_min(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(8))
        plan = SlotPlan.build(ctx, CFG)
        # 8 MiB / 1 MiB mem_min -> 8, capped at nah=2 -> 2 slots/node.
        for node in ctx.cluster.nodes:
            assert len(plan.by_node[node.node_id]) == 2
            for slot in plan.by_node[node.node_id]:
                assert slot.buffer_bytes == mib(4)

    def test_starved_node_offers_no_slots(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(8))
        ctx.cluster.nodes[1].memory.set_reserved(
            ctx.machine.node.mem_capacity
        )  # node 1: zero available
        plan = SlotPlan.build(ctx, CFG)
        assert 1 not in plan.by_node
        assert len(plan.slots) == 6

    def test_fully_starved_cluster_degrades_gracefully(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(0)
        plan = SlotPlan.build(ctx, CFG)
        assert len(plan.slots) == ctx.cluster.n_nodes
        assert all(s.buffer_bytes == CFG.mem_min for s in plan.slots)

    def test_best_for_prefers_emptier_bigger_slots(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(8))
        plan = SlotPlan.build(ctx, CFG)
        first = plan.best_for([0, 1], mib(2))
        first.load += mib(2)
        second = plan.best_for([0, 1], mib(2))
        assert second is not first


class TestPlaceGroup:
    def _plan_one(self, ctx, reqs, cfg):
        groups = divide_groups(reqs, ctx.comm, cfg)
        plan = SlotPlan.build(ctx, cfg)
        all_assts = []
        for g in groups:
            tree = PartitionTree.build(g.coverage, cfg.msg_ind, region=g.region)
            assts, stats = place_group(
                g, tree, {r.rank: r for r in reqs}, ctx, cfg, plan
            )
            all_assts.extend(assts)
        return plan, all_assts, stats

    def test_assignments_cover_workload(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(8))
        reqs = serial_requests(8, mib(2))
        plan, assts, _ = self._plan_one(ctx, reqs, CFG)
        union = ExtentList.union_all([a.coverage for a in assts])
        assert union == ExtentList.union_all([r.extents for r in reqs])

    def test_aggregator_on_intersecting_host(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(8))
        reqs = serial_requests(8, mib(2))
        plan, assts, _ = self._plan_one(ctx, reqs, CFG)
        slot_by_id = {s.slot_id: s for s in plan.slots}
        for a in assts:
            node = slot_by_id[a.slot_id].node_id
            assert node in a.host_ranks  # locality preserved

    def test_starved_host_triggers_remerge(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(8))
        # Node 1 (ranks 2,3) starved -> its domains must remerge/move.
        ctx.cluster.nodes[1].memory.set_reserved(ctx.machine.node.mem_capacity)
        reqs = serial_requests(8, mib(2))
        plan, assts, stats = self._plan_one(ctx, reqs, CFG)
        assert stats.n_remerges > 0
        slot_by_id = {s.slot_id: s for s in plan.slots}
        for a in assts:
            assert slot_by_id[a.slot_id].node_id != 1
        # still complete coverage
        union = ExtentList.union_all([a.coverage for a in assts])
        assert union.total == 8 * mib(2)

    def test_dynamic_placement_picks_data_affine_rank(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(64))
        reqs = serial_requests(8, mib(2))
        cfg = CFG.replace(msg_ind=mib(64), msg_group=mib(256), group_mode="off")
        groups = divide_groups(reqs, ctx.comm, cfg)
        plan = SlotPlan.build(ctx, cfg)
        tree = PartitionTree.build(groups[0].coverage, cfg.msg_ind)
        assts, _ = place_group(
            groups[0], tree, {r.rank: r for r in reqs}, ctx, cfg, plan
        )
        domains = build_domains(plan, assts, ctx, cfg)
        (domain,) = domains
        # The aggregator holds data inside the domain...
        assert reqs[domain.aggregator].extents.overlap_bytes(domain.coverage) > 0
        # ...and is, among its host node's ranks, the one with the most
        # bytes in the domain.
        agg_node = ctx.comm.node_of(domain.aggregator)
        best_on_node = max(
            (int(r) for r in ctx.cluster.ranks_on_node(agg_node)),
            key=lambda r: reqs[r].extents.overlap_bytes(domain.coverage),
        )
        assert domain.aggregator == best_on_node


class TestRebalance:
    def test_moves_load_off_overloaded_slot(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(8))
        plan = SlotPlan.build(ctx, CFG)
        # Hand-build assignments: everything on slot 0.
        assts = []
        for i in range(8):
            cov = ExtentList.single(i * mib(2), mib(2))
            assts.append(
                Assignment(
                    slot_id=0,
                    coverage=cov,
                    group_id=0,
                    host_ranks={n.node_id: ((0, 1),) for n in ctx.cluster.nodes},
                )
            )
            plan.slots[0].load += mib(2)
        before = plan.max_rounds()
        out, moves = rebalance(plan, assts)
        assert moves > 0
        assert plan.max_rounds() < before
        # Bytes conserved.
        assert sum(a.nbytes for a in out) == 8 * mib(2)

    def test_balanced_input_untouched(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(8))
        plan = SlotPlan.build(ctx, CFG)
        assts = []
        for i, slot in enumerate(plan.slots):
            cov = ExtentList.single(i * mib(4), mib(4))
            assts.append(
                Assignment(slot.slot_id, cov, 0, {slot.node_id: ((0, 1),)})
            )
            slot.load += mib(4)
        _, moves = rebalance(plan, assts)
        assert moves == 0

    def test_empty(self):
        ctx = make_ctx()
        plan = SlotPlan.build(ctx, CFG)
        out, moves = rebalance(plan, [])
        assert out == [] and moves == 0


class TestBuildDomains:
    def test_merges_per_slot_across_groups(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(8))
        plan = SlotPlan.build(ctx, CFG)
        a1 = Assignment(0, ExtentList.single(0, 100), 0, {0: ((0, 100),)})
        a2 = Assignment(0, ExtentList.single(200, 100), 1, {0: ((0, 100),)})
        plan.slots[0].load += 200
        domains = build_domains(plan, [a1, a2], ctx, CFG)
        assert len(domains) == 1
        assert domains[0].group_id == -1  # multi-group slot
        assert domains[0].coverage.to_pairs() == [(0, 100), (200, 100)]

    def test_buffer_capped_by_slot_and_coverage(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(8))
        plan = SlotPlan.build(ctx, CFG)
        a = Assignment(0, ExtentList.single(0, 10), 0, {0: ((0, 10),)})
        domains = build_domains(plan, [a], ctx, CFG)
        assert domains[0].buffer_bytes == 10  # capped by tiny coverage
