"""Property suite over aggregation-group division (Section 3.1).

For arbitrary workload shapes, group division must always hold:

* group coverages are disjoint and their union is exactly the
  workload's aggregate byte set;
* per-group covered bytes sum to the workload total;
* every member rank actually owns bytes inside its group's region;
* serial division never splits one node's envelope across two groups;
* the columnar division (``divide_groups_flat``) produces the same
  groups as the object path — and the full columnar plan matches the
  object plan bit for bit.
"""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import Cluster, NetworkModel, scaled_testbed
from repro.core import (
    MemoryConsciousCollectiveIO,
    MemoryConsciousConfig,
    divide_groups,
)
from repro.core.columnar import divide_groups_flat
from repro.core.plans import plan_to_dict
from repro.io import CollectiveHints, make_context
from repro.mpi import AccessRequest, SimComm, flatten_requests
from repro.util import ExtentList, kib

pytestmark = pytest.mark.slow

N_RANKS = 8

chunk_lists = st.lists(
    st.tuples(st.integers(0, 1 << 17), st.integers(1, 1 << 11)),
    min_size=2,
    max_size=24,
)
modes = st.sampled_from(["serial", "interleaved", "off", "auto"])
msg_groups = st.sampled_from([kib(8), kib(64), kib(256)])


def _comm():
    machine = scaled_testbed(4, cores_per_node=2)
    cluster = Cluster(machine, N_RANKS, procs_per_node=2)
    return SimComm(cluster, NetworkModel(machine))


def _requests(chunks):
    claimed = ExtentList.empty()
    reqs = []
    for rank in range(N_RANKS):
        el = ExtentList.from_pairs(chunks[rank::N_RANKS]).subtract(claimed)
        claimed = claimed.union(el)
        reqs.append(AccessRequest(rank, el))
    return reqs, claimed


def _config(mode, msg_group):
    return MemoryConsciousConfig(
        msg_ind=kib(8), msg_group=msg_group, group_mode=mode,
        mem_min=1, buffer_floor=1,
    )


@given(chunks=chunk_lists, mode=modes, msg_group=msg_groups)
def test_groups_tile_aggregate_coverage(chunks, mode, msg_group):
    reqs, claimed = _requests(chunks)
    groups = divide_groups(reqs, _comm(), _config(mode, msg_group))
    union = ExtentList.union_all([g.coverage for g in groups])
    assert union == claimed
    # disjoint: summed bytes equal union bytes equal workload total
    assert sum(g.covered_bytes for g in groups) == claimed.total
    for a, b in zip(groups, groups[1:]):
        assert a.region.end <= b.region.offset


@given(chunks=chunk_lists, mode=modes, msg_group=msg_groups)
def test_members_own_bytes_in_region(chunks, mode, msg_group):
    reqs, _ = _requests(chunks)
    groups = divide_groups(reqs, _comm(), _config(mode, msg_group))
    for g in groups:
        assert g.member_ranks == tuple(sorted(set(g.member_ranks)))
        for rank in g.member_ranks:
            clipped = reqs[rank].extents.clip(
                g.region.offset, g.region.length
            )
            assert clipped.total > 0, f"zero-byte member {rank}"


@given(chunks=chunk_lists, msg_group=msg_groups)
def test_serial_never_splits_a_node(chunks, msg_group):
    reqs, _ = _requests(chunks)
    comm = _comm()
    groups = divide_groups(reqs, comm, _config("serial", msg_group))
    # Merge each node's requests into one envelope; it must fall inside
    # exactly one group's region.
    by_node: dict[int, ExtentList] = {}
    for r in reqs:
        if r.extents.is_empty:
            continue
        node = comm.node_of(r.rank)
        by_node[node] = by_node.get(node, ExtentList.empty()).union(r.extents)
    for node, extents in by_node.items():
        env = extents.envelope()
        holders = [
            g for g in groups
            if g.region.offset < env.end and env.offset < g.region.end
        ]
        assert len(holders) == 1, f"node {node} straddles groups"


@given(chunks=chunk_lists, mode=modes, msg_group=msg_groups)
def test_columnar_division_matches_object(chunks, mode, msg_group):
    reqs, _ = _requests(chunks)
    comm = _comm()
    config = _config(mode, msg_group)
    obj = divide_groups(reqs, comm, config)
    col, pieces = divide_groups_flat(flatten_requests(reqs), comm, config)
    assert [
        (g.group_id, g.region, g.coverage, g.member_ranks) for g in obj
    ] == [
        (g.group_id, g.region, g.coverage, g.member_ranks) for g in col
    ]
    assert len(pieces) == len(col)


@given(chunks=chunk_lists, mode=modes)
def test_columnar_plan_matches_object_plan(chunks, mode):
    reqs, _ = _requests(chunks)
    config = MemoryConsciousConfig(
        msg_ind=kib(8), msg_group=kib(64), group_mode=mode,
        mem_min=kib(8), buffer_floor=kib(8),
    )

    def build(engine):
        machine = scaled_testbed(4, cores_per_node=2)
        ctx = make_context(
            machine, N_RANKS, procs_per_node=2, seed=11,
            hints=CollectiveHints(cb_buffer_size=config.msg_ind),
        )
        ctx.cluster.apply_memory_variance(
            ctx.rng, mean_available=kib(64), std=kib(32)
        )
        strategy = MemoryConsciousCollectiveIO(config, engine=engine)
        return plan_to_dict(strategy.build_plan(ctx, reqs))

    assert build("object") == build("columnar")
