"""Tests for the MC-CIO driver (plan + end-to-end correctness)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MemoryConsciousCollectiveIO, MemoryConsciousConfig
from repro.io import make_context
from repro.cluster import scaled_testbed
from repro.mpi import AccessRequest, pattern_bytes
from repro.util import ExtentList, mib
from repro.workloads import IORWorkload


CFG = MemoryConsciousConfig(
    msg_ind=mib(1), msg_group=mib(8), nah=2, mem_min=mib(1) // 4,
    buffer_floor=mib(1) // 16,
)


def make_ctx(track=True):
    machine = scaled_testbed(4, cores_per_node=4)
    ctx = make_context(machine, 8, procs_per_node=2, track_data=track, seed=11)
    ctx.cluster.set_uniform_available(mib(2))
    return ctx


def serial_requests(n_procs, nbytes, with_data=True):
    out = []
    for p in range(n_procs):
        el = ExtentList.single(p * nbytes, nbytes)
        out.append(
            AccessRequest(p, el, pattern_bytes(el) if with_data else None)
        )
    return out


class TestPlan:
    def test_domains_cover_workload_once(self):
        ctx = make_ctx()
        reqs = serial_requests(8, mib(2), with_data=False)
        domains, stats, groups = MemoryConsciousCollectiveIO(CFG).plan(ctx, reqs)
        union = ExtentList.union_all([d.coverage for d in domains])
        assert union == ExtentList.union_all([r.extents for r in reqs])
        assert sum(d.covered_bytes for d in domains) == union.total

    def test_buffers_respect_node_memory(self):
        ctx = make_ctx()
        reqs = serial_requests(8, mib(2), with_data=False)
        domains, _, _ = MemoryConsciousCollectiveIO(CFG).plan(ctx, reqs)
        per_node: dict[int, int] = {}
        for d in domains:
            node = ctx.comm.node_of(d.aggregator)
            per_node[node] = per_node.get(node, 0) + d.buffer_bytes
        for node_id, used in per_node.items():
            assert used <= ctx.cluster.nodes[node_id].available_memory

    def test_nah_respected(self):
        ctx = make_ctx()
        reqs = serial_requests(8, mib(2), with_data=False)
        domains, _, _ = MemoryConsciousCollectiveIO(CFG).plan(ctx, reqs)
        per_node: dict[int, int] = {}
        for d in domains:
            node = ctx.comm.node_of(d.aggregator)
            per_node[node] = per_node.get(node, 0) + 1
        assert all(count <= CFG.nah for count in per_node.values())


class TestEndToEnd:
    def test_write_is_byte_accurate(self):
        ctx = make_ctx()
        reqs = serial_requests(8, mib(1))
        f = ctx.pfs.open("out")
        res = MemoryConsciousCollectiveIO(CFG).write(ctx, f, reqs)
        full = ExtentList.union_all([r.extents for r in reqs])
        assert np.array_equal(f.apply_read(full), pattern_bytes(full))
        assert res.elapsed > 0
        assert res.nbytes == 8 * mib(1)

    def test_read_roundtrip(self):
        ctx = make_ctx()
        write_reqs = serial_requests(8, mib(1))
        f = ctx.pfs.open("out")
        MemoryConsciousCollectiveIO(CFG).write(ctx, f, write_reqs)
        read_reqs = serial_requests(8, mib(1), with_data=False)
        MemoryConsciousCollectiveIO(CFG).read(ctx, f, read_reqs)
        for wr, rd in zip(write_reqs, read_reqs):
            assert np.array_equal(rd.data, wr.data)

    def test_interleaved_write_verified(self):
        ctx = make_ctx()
        wl = IORWorkload(8, block_size=mib(1), transfer_size=mib(1) // 8)
        reqs = wl.requests(with_data=True)
        f = ctx.pfs.open("ior")
        MemoryConsciousCollectiveIO(CFG).write(ctx, f, reqs)
        full = ExtentList.union_all([r.extents for r in reqs])
        assert np.array_equal(f.apply_read(full), pattern_bytes(full))

    def test_extras_reported(self):
        ctx = make_ctx()
        reqs = serial_requests(8, mib(1))
        res = MemoryConsciousCollectiveIO(CFG).write(ctx, ctx.pfs.open("x"), reqs)
        assert "n_groups" in res.extras
        assert "n_remerges" in res.extras
        assert res.extras["n_groups"] >= 1

    def test_memory_released_after_run(self):
        ctx = make_ctx()
        reqs = serial_requests(8, mib(1))
        MemoryConsciousCollectiveIO(CFG).write(ctx, ctx.pfs.open("x"), reqs)
        for node in ctx.cluster.nodes:
            assert node.memory.in_use == 0

    def test_ablation_static_placement_changes_aggregators(self):
        ctx1 = make_ctx()
        ctx2 = make_ctx()
        # Skew the data so rank affinity matters.
        reqs = serial_requests(8, mib(1), with_data=False)
        dyn, _, _ = MemoryConsciousCollectiveIO(CFG).plan(ctx1, reqs)
        static_cfg = CFG.replace(dynamic_placement=False)
        sta, _, _ = MemoryConsciousCollectiveIO(static_cfg).plan(ctx2, reqs)
        assert {d.aggregator for d in dyn} or {d.aggregator for d in sta}

    def test_grouping_off_single_group(self):
        ctx = make_ctx()
        reqs = serial_requests(8, mib(1))
        cfg = CFG.replace(group_mode="off")
        res = MemoryConsciousCollectiveIO(cfg).write(ctx, ctx.pfs.open("y"), reqs)
        assert res.extras["n_groups"] == 1
