"""Tests for aggregation group division (paper Section 3.1, Figure 4)."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, NetworkModel, scaled_testbed
from repro.core import MemoryConsciousConfig, detect_serial, divide_groups
from repro.mpi import AccessRequest, SimComm
from repro.util import ExtentList, mib
from repro.workloads import IORWorkload


def make_comm(n_procs=9, procs_per_node=3, n_nodes=3):
    machine = scaled_testbed(n_nodes, cores_per_node=procs_per_node)
    cluster = Cluster(machine, n_procs, procs_per_node=procs_per_node)
    return SimComm(cluster, NetworkModel(machine))


def serial_requests(n_procs, nbytes):
    return [
        AccessRequest(p, ExtentList.single(p * nbytes, nbytes))
        for p in range(n_procs)
    ]


class TestDetectSerial:
    def test_serial_distribution_detected(self):
        comm = make_comm()
        reqs = serial_requests(9, 100)
        assert detect_serial(reqs, comm, overlap_threshold=0.25)

    def test_interleaved_detected(self):
        comm = make_comm()
        wl = IORWorkload(9, block_size=1600, transfer_size=100)
        reqs = wl.requests()
        assert not detect_serial(reqs, comm, overlap_threshold=0.25)

    def test_single_node_trivially_serial(self):
        comm = make_comm(n_procs=3, procs_per_node=3, n_nodes=1)
        wl = IORWorkload(3, block_size=400, transfer_size=100)
        assert detect_serial(wl.requests(), comm, overlap_threshold=0.25)


class TestFigure4Example:
    def test_paper_figure4_node_aligned_cut(self):
        """Figure 4: 9 processes on 3 nodes, serial distribution; the
        first group's boundary extends to the ending offset of the data
        accessed by the last process of node 1 — no node straddles two
        groups."""
        comm = make_comm(9, 3, 3)
        per_proc = 100
        reqs = serial_requests(9, per_proc)
        config = MemoryConsciousConfig(
            msg_group=250,  # less than one node's 300 B -> snap to node end
            group_mode="serial",
            msg_ind=100,
            mem_min=1,
            buffer_floor=1,
        )
        groups = divide_groups(reqs, comm, config)
        # Each node's 3 processes hold 300 B; groups close at node ends.
        assert [g.region.offset for g in groups] == [0, 300, 600]
        assert [g.region.end for g in groups] == [300, 600, 900]
        # Members: exactly one node's ranks per group.
        assert groups[0].member_ranks == (0, 1, 2)
        assert groups[1].member_ranks == (3, 4, 5)
        assert groups[2].member_ranks == (6, 7, 8)


class TestGroupInvariants:
    @pytest.mark.parametrize("mode", ["serial", "interleaved", "off", "auto"])
    def test_groups_partition_workload(self, mode):
        comm = make_comm()
        wl = IORWorkload(9, block_size=3200, transfer_size=100)
        reqs = wl.requests()
        config = MemoryConsciousConfig(
            msg_group=4000, group_mode=mode, msg_ind=512, mem_min=1, buffer_floor=1
        )
        groups = divide_groups(reqs, comm, config)
        total = ExtentList.union_all([r.extents for r in reqs])
        union = ExtentList.union_all([g.coverage for g in groups])
        assert union == total
        assert sum(g.covered_bytes for g in groups) == total.total  # disjoint
        # Regions ordered and non-overlapping.
        for a, b in zip(groups, groups[1:]):
            assert a.region.end <= b.region.offset

    def test_off_mode_single_group(self):
        comm = make_comm()
        reqs = serial_requests(9, 100)
        config = MemoryConsciousConfig(
            msg_group=10, group_mode="off", msg_ind=64, mem_min=1, buffer_floor=1
        )
        groups = divide_groups(reqs, comm, config)
        assert len(groups) == 1
        assert groups[0].member_ranks == tuple(range(9))

    def test_interleaved_quantile_cuts(self):
        comm = make_comm()
        wl = IORWorkload(9, block_size=3200, transfer_size=100)
        config = MemoryConsciousConfig(
            msg_group=9600, group_mode="interleaved", msg_ind=1024,
            mem_min=1, buffer_floor=1,
        )
        groups = divide_groups(wl.requests(), comm, config)
        assert len(groups) == 3  # 28800 bytes / 9600
        sizes = [g.covered_bytes for g in groups]
        assert all(s == 9600 for s in sizes)

    def test_interleaved_remainder_splits_half_up(self):
        """Regression: flooring ``total // msg_group`` used to fold the
        remainder into the last group — a 1.5×Msg_group workload came
        back as ONE group 1.5× over target. Half-up rounding cuts it
        into two ~0.75× groups instead."""
        comm = make_comm()
        wl = IORWorkload(9, block_size=1600, transfer_size=100)  # 14400 B
        config = MemoryConsciousConfig(
            msg_group=9600, group_mode="interleaved", msg_ind=1024,
            mem_min=1, buffer_floor=1,
        )
        groups = divide_groups(wl.requests(), comm, config)
        assert len(groups) == 2
        sizes = [g.covered_bytes for g in groups]
        assert sizes == [7200, 7200]
        assert all(s <= config.msg_group for s in sizes)

    def test_serial_boundary_extends_over_straddling_node(self):
        """Regression: with overlapping node envelopes, the serial cut
        used to land at the max end of the *processed* nodes even when a
        later node started before that cut — splitting the later node's
        data across two groups. The boundary must extend over every
        in-flight node."""
        comm = make_comm(n_procs=3, procs_per_node=1, n_nodes=3)
        reqs = [
            AccessRequest(0, ExtentList.single(0, 300)),
            AccessRequest(1, ExtentList.single(250, 300)),  # straddles 300
            AccessRequest(2, ExtentList.single(600, 300)),
        ]
        config = MemoryConsciousConfig(
            msg_group=100,  # tiny: wants to cut after the first node
            group_mode="serial",
            msg_ind=100,
            mem_min=1,
            buffer_floor=1,
        )
        groups = divide_groups(reqs, comm, config)
        # No node's data may cross a group boundary.
        for req in reqs:
            holders = [
                g for g in groups
                if req.extents.clip(g.region.offset, g.region.length).total > 0
            ]
            assert len(holders) == 1, f"rank {req.rank} split across groups"
        assert [g.region.end for g in groups] == [550, 900]
        assert groups[0].member_ranks == (0, 1)
        assert groups[1].member_ranks == (2,)

    def test_empty_requests(self):
        comm = make_comm()
        config = MemoryConsciousConfig(mem_min=1, buffer_floor=1)
        assert divide_groups([AccessRequest(0, ExtentList.empty())], comm, config) == []

    def test_members_only_ranks_with_data_in_region(self):
        comm = make_comm()
        reqs = serial_requests(9, 100)
        config = MemoryConsciousConfig(
            msg_group=450, group_mode="serial", msg_ind=100, mem_min=1, buffer_floor=1
        )
        groups = divide_groups(reqs, comm, config)
        for g in groups:
            for rank in g.member_ranks:
                assert reqs[rank].extents.clip(
                    g.region.offset, g.region.length
                ).total > 0
