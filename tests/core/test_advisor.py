"""Tests for the strategy advisor."""

from __future__ import annotations

import pytest

from repro.cluster import scaled_testbed
from repro.core import MemoryConsciousConfig
from repro.core.advisor import advise, profile_requests
from repro.io import CollectiveHints, make_context
from repro.mpi import AccessRequest
from repro.util import ExtentList, kib, mib
from repro.workloads import IORWorkload


@pytest.fixture
def ctx():
    machine = scaled_testbed(4, cores_per_node=4)
    return make_context(
        machine, 8, procs_per_node=2, seed=1,
        hints=CollectiveHints(cb_buffer_size=mib(4)),
    )


def contiguous_reqs(n=8, size=mib(16)):
    return [AccessRequest(p, ExtentList.single(p * size, size)) for p in range(n)]


class TestProfile:
    def test_contiguous(self):
        prof = profile_requests(contiguous_reqs())
        assert prof.is_contiguous
        assert prof.envelope_density == pytest.approx(1.0)
        assert not prof.is_interleaved

    def test_interleaved(self):
        wl = IORWorkload(8, block_size=mib(1), transfer_size=kib(64))
        prof = profile_requests(wl.requests())
        assert not prof.is_contiguous
        assert prof.is_interleaved
        assert prof.segments_per_rank == 16

    def test_empty(self):
        prof = profile_requests([AccessRequest(0, ExtentList.empty())])
        assert prof.n_ranks == 0


class TestAdvise:
    def test_large_contiguous_gets_independent(self, ctx):
        rec = advise(ctx, contiguous_reqs())
        assert rec.strategy_name == "independent"
        assert rec.build().name == "independent"

    def test_interleaved_with_plentiful_memory_two_phase(self, ctx):
        ctx.cluster.set_uniform_available(mib(512))
        wl = IORWorkload(8, block_size=mib(1), transfer_size=kib(64))
        rec = advise(ctx, wl.requests())
        assert rec.strategy_name == "two-phase"

    def test_scarce_memory_memory_conscious(self, ctx):
        ctx.cluster.set_uniform_available(mib(1))  # below cb=4 MiB
        wl = IORWorkload(8, block_size=mib(1), transfer_size=kib(64))
        rec = advise(ctx, wl.requests())
        assert rec.strategy_name == "memory-conscious"
        assert any("cannot back" in r for r in rec.reasons)

    def test_uneven_memory_memory_conscious(self, ctx):
        for i, node in enumerate(ctx.cluster.nodes):
            cap = ctx.machine.node.mem_capacity
            node.memory.set_reserved(cap - mib(8) * (1 + 3 * (i % 2)))
        wl = IORWorkload(8, block_size=mib(1), transfer_size=kib(64))
        rec = advise(ctx, wl.requests())
        assert rec.strategy_name == "memory-conscious"

    def test_build_with_config(self, ctx):
        ctx.cluster.set_uniform_available(mib(1))
        wl = IORWorkload(8, block_size=mib(1), transfer_size=kib(64))
        rec = advise(ctx, wl.requests())
        cfg = MemoryConsciousConfig(msg_ind=mib(2), mem_min=kib(256))
        strategy = rec.build(cfg)
        assert strategy.name == "memory-conscious"
        assert strategy.config.msg_ind == mib(2)

    def test_reasons_are_human_readable(self, ctx):
        rec = advise(ctx, contiguous_reqs())
        assert rec.reasons
        assert all(isinstance(r, str) and r for r in rec.reasons)
