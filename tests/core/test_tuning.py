"""Tests for the Nah/Msg_ind/Msg_group calibration procedures."""

from __future__ import annotations

import pytest

from repro.cluster import scaled_testbed, testbed_640
from repro.core import MemoryConsciousConfig, auto_tune, tune_group, tune_node
from repro.util import mib


@pytest.fixture(scope="module")
def machine():
    return scaled_testbed(8)


class TestTuneNode:
    def test_returns_feasible_point(self, machine):
        nah, msg_ind, sweep = tune_node(machine)
        assert nah >= 1
        assert msg_ind >= mib(1)
        assert nah <= machine.node.cores
        assert (nah, msg_ind) in sweep

    def test_near_peak(self, machine):
        nah, msg_ind, sweep = tune_node(machine, knee_fraction=0.9)
        best = max(sweep.values())
        assert sweep[(nah, msg_ind)] >= 0.9 * best

    def test_bandwidth_monotone_in_aggregator_count(self, machine):
        _, _, sweep = tune_node(machine)
        # At a fixed large message size, more aggregators never slows the
        # node down (until some resource saturates).
        msg = mib(16)
        series = sorted(
            (k, bw) for (k, s), bw in sweep.items() if s == msg
        )
        for (k1, bw1), (k2, bw2) in zip(series, series[1:]):
            assert bw2 >= bw1 * 0.999

    def test_single_stream_is_stream_capped(self, machine):
        _, _, sweep = tune_node(machine)
        bw = sweep[(1, mib(64))]
        assert bw <= machine.storage.client_stream_bandwidth * 1.001


class TestTuneGroup:
    def test_group_size_is_positive_multiple_of_msg_ind(self, machine):
        msg_group, sweep = tune_group(machine, mib(4), 4)
        assert msg_group % mib(4) == 0
        assert msg_group >= mib(4)
        assert len(sweep) >= 2

    def test_knee_at_saturation(self, machine):
        msg_group, sweep = tune_group(machine, mib(4), 4, knee_fraction=0.95)
        best = max(sweep.values())
        knee_aggs = msg_group // mib(4)
        assert sweep[knee_aggs] >= 0.95 * best
        # No smaller measured count reaches the knee.
        for k, bw in sweep.items():
            if k < knee_aggs:
                assert bw < 0.95 * best


class TestAutoTune:
    def test_packaged_config(self, machine):
        result = auto_tune(machine)
        cfg = result.as_config()
        assert isinstance(cfg, MemoryConsciousConfig)
        assert cfg.nah == result.nah
        assert cfg.msg_ind == result.msg_ind
        assert cfg.mem_min == result.msg_ind  # Mem_min = saturating size
        assert cfg.msg_group == result.msg_group

    def test_respects_base_config(self, machine):
        base = MemoryConsciousConfig(group_mode="interleaved")
        cfg = auto_tune(machine).as_config(base)
        assert cfg.group_mode == "interleaved"

    def test_testbed_calibration_is_sane(self):
        result = auto_tune(testbed_640())
        # One DDR-IB node: a handful of aggregators with MiB-scale
        # messages saturate it; the group knee is well under the file's
        # size but above one node's contribution.
        assert 2 <= result.nah <= 12
        assert mib(1) <= result.msg_ind <= mib(64)
        assert result.msg_group >= result.nah * result.msg_ind
