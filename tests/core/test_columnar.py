"""Columnar planning engine: FlatAccess plumbing and object-path parity.

The columnar engine's contract is *bit-identity*: for any workload it
must produce the same serialized plan (``plan_to_dict``, spec hash and
all) as the per-object reference path. These tests pin the contract on
hand-built workloads, on the committed golden fixture, and on the
flatten/round-trip plumbing underneath it.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.api import Experiment
from repro.cluster import scaled_testbed
from repro.core import MemoryConsciousCollectiveIO, MemoryConsciousConfig
from repro.core.plans import plan_to_dict
from repro.io import CollectiveHints, make_context
from repro.mpi import AccessRequest, FlatAccess, flatten_requests
from repro.util import ExtentList, kib, mib
from repro.util.errors import ConfigurationError
from repro.workloads import IORWorkload

GOLDEN = Path(__file__).resolve().parents[1] / "fixtures" / "golden.plan.json"


class TestFlatAccess:
    def test_flatten_orders_by_rank(self):
        reqs = [
            AccessRequest(2, ExtentList.single(200, 10)),
            AccessRequest(0, ExtentList.from_pairs([(0, 10), (50, 5)])),
        ]
        flat = flatten_requests(reqs)
        assert flat.ranks.tolist() == [0, 0, 2]
        assert flat.offsets.tolist() == [0, 50, 200]
        assert flat.lengths.tolist() == [10, 5, 10]
        assert flat.total == 25

    def test_round_trip_through_requests(self):
        reqs = [
            AccessRequest(0, ExtentList.from_pairs([(0, 10), (50, 5)])),
            AccessRequest(3, ExtentList.single(100, 20)),
        ]
        back = flatten_requests(reqs).to_requests()
        assert [(r.rank, r.extents) for r in back] == [
            (r.rank, r.extents) for r in reqs
        ]

    def test_aggregate_normalizes(self):
        flat = FlatAccess(
            np.array([0, 5, 30]), np.array([10, 10, 5]), np.array([0, 1, 1])
        )
        agg = flat.aggregate()
        assert list(zip(agg.starts.tolist(), agg.ends.tolist())) == [
            (0, 15),
            (30, 35),
        ]

    def test_rejects_zero_length_segments(self):
        with pytest.raises(Exception):
            FlatAccess(np.array([0]), np.array([0]), np.array([0]))

    def test_workload_flat_requests_match_objects(self):
        for segmented in (True, False):
            wl = IORWorkload(
                12, block_size=kib(4), transfer_size=kib(1),
                segmented=segmented,
            )
            a = flatten_requests(wl.requests())
            b = wl.flat_requests()
            np.testing.assert_array_equal(a.offsets, b.offsets)
            np.testing.assert_array_equal(a.lengths, b.lengths)
            np.testing.assert_array_equal(a.ranks, b.ranks)


class TestEngineSwitch:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryConsciousCollectiveIO(engine="simd")

    def test_engines_share_spec(self):
        cfg = MemoryConsciousConfig()
        a = MemoryConsciousCollectiveIO(cfg, engine="object")
        b = MemoryConsciousCollectiveIO(cfg, engine="columnar")
        # The engine is presentation, not specification: both drivers
        # describe the same experiment.
        assert a.config == b.config


def _plan_dict(engine: str, reqs, *, n_nodes=3, ppn=4, cfg=None):
    machine = scaled_testbed(n_nodes, cores_per_node=ppn)
    cfg = cfg or MemoryConsciousConfig(
        msg_ind=kib(64), msg_group=kib(256), buffer_floor=kib(8)
    )
    ctx = make_context(
        machine,
        n_nodes * ppn,
        procs_per_node=ppn,
        hints=CollectiveHints(cb_buffer_size=cfg.msg_ind),
    )
    ctx.cluster.set_uniform_available(mib(1))
    strategy = MemoryConsciousCollectiveIO(cfg, engine=engine)
    return plan_to_dict(strategy.build_plan(ctx, reqs))


class TestEngineParity:
    @pytest.mark.parametrize("mode", ["serial", "interleaved", "off", "auto"])
    def test_ior_plans_identical(self, mode):
        wl = IORWorkload(12, block_size=kib(16), transfer_size=kib(4))
        cfg = MemoryConsciousConfig(
            msg_ind=kib(16), msg_group=kib(64), group_mode=mode,
            buffer_floor=kib(8),
        )
        reqs = wl.requests()
        assert _plan_dict("object", reqs, cfg=cfg) == _plan_dict(
            "columnar", reqs, cfg=cfg
        )

    def test_sparse_overlapping_plans_identical(self):
        reqs = [
            AccessRequest(0, ExtentList.from_pairs([(0, 4096), (65536, 8192)])),
            AccessRequest(3, ExtentList.single(2048, 16384)),
            AccessRequest(5, ExtentList.from_pairs([(40960, 4096), (90112, 512)])),
            AccessRequest(11, ExtentList.single(131072, 65536)),
        ]
        assert _plan_dict("object", reqs) == _plan_dict("columnar", reqs)

    def test_flat_entry_point_matches_object_engine(self):
        wl = IORWorkload(12, block_size=kib(16), transfer_size=kib(4))
        machine = scaled_testbed(3, cores_per_node=4)
        cfg = MemoryConsciousConfig(
            msg_ind=kib(16), msg_group=kib(64), buffer_floor=kib(8)
        )

        def ctx():
            c = make_context(
                machine, 12, procs_per_node=4,
                hints=CollectiveHints(cb_buffer_size=cfg.msg_ind),
            )
            c.cluster.set_uniform_available(mib(1))
            return c

        obj = MemoryConsciousCollectiveIO(cfg, engine="object")
        col = MemoryConsciousCollectiveIO(cfg)
        domains_o, stats_o, sizes_o = obj.plan(ctx(), wl.requests())
        domains_c, stats_c, sizes_c = col.plan_flat(ctx(), wl.flat_requests())
        assert [
            (d.region, d.coverage, d.aggregator, d.buffer_bytes)
            for d in domains_o
        ] == [
            (d.region, d.coverage, d.aggregator, d.buffer_bytes)
            for d in domains_c
        ]
        assert sizes_o == sizes_c
        assert stats_o.n_remerges == stats_c.n_remerges


class TestGoldenFixtureParity:
    """Both engines must regenerate the committed golden plan."""

    EXPERIMENT = Experiment(
        machine="testbed-4", n_procs=8, procs_per_node=2,
        workload_params={"block_size": mib(1), "transfer_size": mib(1) // 4},
        cb_buffer=mib(1), seed=3,
    )

    @pytest.mark.parametrize("engine", ["object", "columnar"])
    def test_engine_reproduces_golden(self, engine):
        committed = json.loads(GOLDEN.read_text())
        exp = self.EXPERIMENT
        machine = exp.resolve_machine()
        base = exp.resolve_strategy(machine)
        strategy = MemoryConsciousCollectiveIO(base.config, engine=engine)
        plan = strategy.build_plan(exp.context(), exp.requests())
        plan.spec_hash = exp.spec_hash()
        regenerated = json.loads(json.dumps(plan_to_dict(plan)))
        assert regenerated == committed
