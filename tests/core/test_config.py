"""Tests for MemoryConsciousConfig validation and copying."""

from __future__ import annotations

import pytest

from repro.core import MemoryConsciousConfig
from repro.util import mib


class TestDefaults:
    def test_defaults_are_consistent(self):
        cfg = MemoryConsciousConfig()
        assert cfg.buffer_floor <= cfg.msg_ind
        assert cfg.group_mode == "auto"
        assert cfg.enable_remerge
        assert cfg.dynamic_placement


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"msg_ind": 0},
            {"msg_group": 0},
            {"nah": 0},
            {"mem_min": 0},
            {"buffer_floor": 0},
        ],
    )
    def test_positive_fields(self, kwargs):
        with pytest.raises(Exception):
            MemoryConsciousConfig(**kwargs)

    def test_group_mode_checked(self):
        with pytest.raises(ValueError):
            MemoryConsciousConfig(group_mode="sideways")

    def test_floor_cannot_exceed_msg_ind(self):
        with pytest.raises(ValueError):
            MemoryConsciousConfig(msg_ind=mib(1), buffer_floor=mib(2))

    def test_overlap_threshold_range(self):
        with pytest.raises(ValueError):
            MemoryConsciousConfig(serial_overlap_threshold=1.5)


class TestReplace:
    def test_replace_copies(self):
        a = MemoryConsciousConfig()
        b = a.replace(nah=7)
        assert b.nah == 7
        assert a.nah != 7 or a.nah == MemoryConsciousConfig().nah

    def test_replace_revalidates(self):
        a = MemoryConsciousConfig()
        with pytest.raises(Exception):
            a.replace(msg_ind=-1)
