"""Property suite over the planner's structural invariants.

For arbitrary workload shapes the partition machinery must always hold:

* partition-tree leaves are disjoint and exactly tile the group's file
  region, and their coverages partition the group's bytes;
* every leaf respects ``Msg_ind`` — until remerging deliberately grows
  one past it;
* remerging preserves both the tiling and the byte partition;
* planned domains land on hosts meeting ``Mem_min`` whenever any such
  host exists, and planning never mutates cluster memory.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.cluster import scaled_testbed
from repro.core import (
    MemoryConsciousCollectiveIO,
    MemoryConsciousConfig,
    PartitionTree,
)
from repro.io import CollectiveHints, make_context
from repro.mpi import AccessRequest
from repro.util import ExtentList, kib, mib

pytestmark = pytest.mark.slow

CFG = MemoryConsciousConfig(
    msg_ind=kib(128), msg_group=kib(512), nah=2, mem_min=kib(32),
    buffer_floor=kib(8),
)

chunk_lists = st.lists(
    st.tuples(st.integers(0, 1 << 17), st.integers(1, 1 << 11)),
    min_size=2,
    max_size=24,
)


def _ctx(seed, mem_kib):
    machine = scaled_testbed(4, cores_per_node=4)
    ctx = make_context(
        machine, 8, procs_per_node=2, seed=seed,
        hints=CollectiveHints(cb_buffer_size=kib(64)),
    )
    ctx.cluster.apply_memory_variance(
        ctx.rng, mean_available=kib(mem_kib), std=mib(1)
    )
    return ctx


def _requests(chunks):
    claimed = ExtentList.empty()
    reqs = []
    for rank in range(8):
        el = ExtentList.from_pairs(chunks[rank::8]).subtract(claimed)
        claimed = claimed.union(el)
        reqs.append(AccessRequest(rank, el))
    return reqs, claimed


def _assert_leaves_partition(tree, coverage):
    tree.validate()
    leaves = tree.leaves()
    # regions tile the root exactly: no gaps, no overlap
    assert leaves[0].lo == tree.root.lo
    assert leaves[-1].hi == tree.root.hi
    for prev, nxt in zip(leaves, leaves[1:]):
        assert prev.hi == nxt.lo
    # coverages partition the input bytes: disjoint union == original
    assert sum(leaf.covered_bytes for leaf in leaves) == coverage.total
    union = ExtentList.union_all([leaf.coverage for leaf in leaves])
    assert union.to_pairs() == coverage.to_pairs()


@given(chunks=chunk_lists, msg_ind_kib=st.integers(1, 64))
def test_tree_leaves_tile_and_respect_msg_ind(chunks, msg_ind_kib):
    coverage = ExtentList.from_pairs(chunks)
    msg_ind = kib(msg_ind_kib)
    tree = PartitionTree.build(coverage, msg_ind)
    _assert_leaves_partition(tree, coverage)
    assert all(leaf.covered_bytes <= msg_ind for leaf in tree.leaves())


@given(
    chunks=st.lists(
        st.tuples(st.integers(0, 1 << 17), st.integers(1, 1 << 11)),
        min_size=6,
        max_size=24,
    ),
    msg_ind_kib=st.integers(1, 4),  # small enough that trees have leaves to shed
    picks=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=8),
)
def test_remerge_preserves_the_partition(chunks, msg_ind_kib, picks):
    coverage = ExtentList.from_pairs(chunks)
    tree = PartitionTree.build(coverage, kib(msg_ind_kib))
    if tree.n_leaves < 2:
        return
    # remove a sequence of leaves; after each surgery the tiling and the
    # byte partition must survive (Msg_ind is deliberately given up)
    for pick in picks:
        leaves = tree.leaves()
        if len(leaves) < 2:
            break
        tree.remove_leaf(leaves[pick % len(leaves)])
        _assert_leaves_partition(tree, coverage)


@given(
    chunks=chunk_lists,
    seed=st.integers(0, 1 << 16),
    mem_kib=st.integers(16, 1024),
)
def test_planned_domains_partition_and_respect_memory(chunks, seed, mem_kib):
    ctx = _ctx(seed, mem_kib)
    reqs, claimed = _requests(chunks)
    assume(not claimed.is_empty)
    domains, stats, group_sizes = MemoryConsciousCollectiveIO(CFG).plan(
        ctx, reqs
    )

    # 1. Domains partition the workload: disjoint, nothing lost.
    assert sum(d.coverage.total for d in domains) == claimed.total
    union = ExtentList.union_all([d.coverage for d in domains])
    assert union.to_pairs() == claimed.to_pairs()

    # 2. Coverage stays inside each domain's declared region, and the
    #    regions of a group tile without gap or overlap.
    by_group: dict[int, list] = {}
    for d in domains:
        by_group.setdefault(d.group_id, []).append(d)
        if not d.coverage.is_empty:
            env = d.coverage.envelope()
            assert env.offset >= d.region.offset and env.end <= d.region.end
    for members in by_group.values():
        members.sort(key=lambda d: d.region.offset)
        for a, b in zip(members, members[1:]):
            assert a.region.end == b.region.offset

    # 3. Msg_ind is respected unless the planner remerged a domain.
    if stats.n_remerges == 0:
        assert all(d.coverage.total <= CFG.msg_ind for d in domains)

    # 4. When any host offers Mem_min, every aggregator (remerged
    #    domains included) sits on one that does; buffers are real.
    starved = all(
        n.memory.available < CFG.mem_min for n in ctx.cluster.nodes
    )
    for d in domains:
        node = ctx.cluster.nodes[ctx.comm.node_of(d.aggregator)]
        if not starved:
            assert node.memory.available >= CFG.mem_min
        assert d.buffer_bytes >= min(CFG.mem_min, d.coverage.total)

    # 5. Planning only reads the cluster — it never allocates.
    assert all(n.memory.in_use == 0 for n in ctx.cluster.nodes)
