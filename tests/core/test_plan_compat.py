"""Plan-format backward compatibility across versions.

The committed ``golden.v2.plan.json`` fixture is the last plan the v2
format produced (pre remote-pool provenance). The contract:

* **v2 loads, verifies, and replays** — a borrow-free v3 plan differs
  from its v2 twin only in the version stamp and the new zero-valued
  stats/config fields, so v2 entries keep replaying bit-identically;
* **v2 must not carry borrow keys** — per-domain borrow provenance is a
  v3 concept; a "v2" plan that has it was tampered with (PV116);
* **v1 demotes to a cache miss** — :func:`plan_from_dict` refuses the
  version and the plan cache treats the entry as absent, replanning
  instead of raising.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import verify_plan
from repro.api import Experiment
from repro.campaign import PlanCache
from repro.core import plan_from_dict, plan_to_dict
from repro.core.plans import PLAN_FORMAT_VERSION, SUPPORTED_PLAN_VERSIONS
from repro.metrics.export import result_to_dict
from repro.util import mib

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures"
GOLDEN_V2 = FIXTURES / "golden.v2.plan.json"
GOLDEN_V3 = FIXTURES / "golden.plan.json"

# The experiment both golden fixtures were generated from.
GOLDEN_EXPERIMENT = Experiment(
    machine="testbed-4", n_procs=8, procs_per_node=2,
    workload_params={"block_size": mib(1), "transfer_size": mib(1) // 4},
    cb_buffer=mib(1), seed=3,
)


def test_version_constants_are_consistent():
    assert PLAN_FORMAT_VERSION == 3
    assert SUPPORTED_PLAN_VERSIONS == {2, 3}
    assert json.loads(GOLDEN_V2.read_text())["version"] == 2
    assert json.loads(GOLDEN_V3.read_text())["version"] == 3


def test_v2_plan_loads_and_verifies():
    data = json.loads(GOLDEN_V2.read_text())
    plan = plan_from_dict(data)
    assert plan.domains
    report = verify_plan(data)
    assert report.ok, report.render()


def test_v2_plan_replays_identically_to_v3():
    v2 = plan_from_dict(json.loads(GOLDEN_V2.read_text()))
    v3 = plan_from_dict(json.loads(GOLDEN_V3.read_text()))
    assert v2.domains == v3.domains
    assert result_to_dict(GOLDEN_EXPERIMENT.run(plan=v2)) == result_to_dict(
        GOLDEN_EXPERIMENT.run(plan=v3)
    )


def test_borrow_free_v3_body_matches_v2_except_new_fields():
    """The v3 format is additive: strip the version stamp and the new
    zero-valued fields and the two golden fixtures are byte-identical."""
    v2 = json.loads(GOLDEN_V2.read_text())
    v3 = json.loads(GOLDEN_V3.read_text())
    v2.pop("version"), v3.pop("version")
    assert v3["config"].pop("pool_capacity") == 0
    assert v3["stats"].pop("n_borrows") == 0
    assert v2 == v3


def test_v2_plan_with_borrow_keys_is_rejected():
    data = json.loads(GOLDEN_V2.read_text())
    data["domains"][0]["borrowed_bytes"] = 4096
    data["domains"][0]["borrow_link"] = 0
    report = verify_plan(data)
    assert not report.ok
    assert "PV116" in report.by_rule()


def test_v1_plan_raises_value_error():
    data = json.loads(GOLDEN_V2.read_text())
    data["version"] = 1
    with pytest.raises(ValueError, match="version"):
        plan_from_dict(data)


def test_v1_cache_entry_demotes_to_a_miss(tmp_path):
    cache = PlanCache(tmp_path)
    key = GOLDEN_EXPERIMENT.spec_hash()
    stale = json.loads(GOLDEN_V2.read_text())
    stale["version"] = 1
    cache.store_raw(key, stale)
    # raw bytes are there, but the typed loader refuses the version
    assert cache.load_raw(key) is not None
    assert cache.load(key) is None
