"""Tests for the binary partition tree (build, surgery, invariants)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PartitionTree, offset_at_rank
from repro.core.partition_tree import PartitionNode
from repro.util import Extent, ExtentList, PartitionError


def dense(total):
    return ExtentList.single(0, total)


class TestOffsetAtRank:
    def test_dense(self):
        cov = ExtentList.from_pairs([(10, 10)])
        assert offset_at_rank(cov, 0) == 10
        assert offset_at_rank(cov, 9) == 19

    def test_with_holes(self):
        cov = ExtentList.from_pairs([(0, 5), (100, 5)])
        assert offset_at_rank(cov, 4) == 4
        assert offset_at_rank(cov, 5) == 100

    def test_out_of_range(self):
        cov = dense(10)
        with pytest.raises(PartitionError):
            offset_at_rank(cov, 10)
        with pytest.raises(PartitionError):
            offset_at_rank(ExtentList.empty(), 0)


class TestBuild:
    def test_small_workload_single_leaf(self):
        tree = PartitionTree.build(dense(100), msg_ind=200)
        assert tree.n_leaves == 1
        tree.validate()

    def test_bisection_until_msg_ind(self):
        tree = PartitionTree.build(dense(1000), msg_ind=100)
        tree.validate()
        for leaf in tree.leaves():
            assert leaf.covered_bytes <= 100

    def test_leaves_partition_coverage(self):
        cov = ExtentList.from_pairs([(0, 300), (500, 300), (1000, 424)])
        tree = PartitionTree.build(cov, msg_ind=128)
        tree.validate()
        assert tree.total_coverage() == cov
        assert sum(l.covered_bytes for l in tree.leaves()) == cov.total

    def test_balanced_split_on_skewed_data(self):
        # All data in the right half of the region: the median split must
        # follow the data, not the midpoint of the region.
        cov = ExtentList.single(900, 100)
        tree = PartitionTree.build(cov, msg_ind=50, region=Extent(0, 1000))
        tree.validate()
        leaves = [l for l in tree.leaves() if l.covered_bytes > 0]
        assert all(l.covered_bytes <= 50 for l in leaves)

    def test_alignment_hook(self):
        align = lambda off: (off // 64) * 64
        tree = PartitionTree.build(dense(1024), msg_ind=256, align=align)
        tree.validate()
        # Snaps apply whenever they keep both halves non-empty; with a
        # power-of-two region every cut is alignable.
        for leaf in tree.leaves()[:-1]:
            assert leaf.hi % 64 == 0

    def test_alignment_discarded_when_it_would_empty_a_half(self):
        # Data only in [60, 70): snapping the median (65) down to 64 is
        # fine, but snapping to 0 would empty the left half and must be
        # discarded rather than crash.
        align = lambda off: (off // 1024) * 1024
        cov = ExtentList.single(60, 10)
        tree = PartitionTree.build(cov, msg_ind=5, align=align)
        tree.validate()
        assert tree.total_coverage() == cov

    def test_empty_coverage_rejected(self):
        with pytest.raises(PartitionError):
            PartitionTree.build(ExtentList.empty(), msg_ind=10)

    def test_coverage_outside_region_rejected(self):
        with pytest.raises(PartitionError):
            PartitionTree.build(dense(100), msg_ind=10, region=Extent(0, 50))


class TestRemoveLeafFigure5:
    """The two takeover cases from the paper's Figure 5."""

    def test_figure5a_sibling_is_leaf(self):
        # Region split once: A = left leaf, B = right leaf. A leaves; B
        # takes over directly and their parent becomes the merged leaf.
        tree = PartitionTree.build(dense(200), msg_ind=100)
        assert tree.n_leaves == 2
        a, b = tree.leaves()
        survivor = tree.remove_leaf(a)
        tree.validate()
        assert tree.n_leaves == 1
        assert survivor.lo == 0 and survivor.hi == 200
        assert survivor.covered_bytes == 200

    def test_figure5b_dfs_into_left_sibling_subtree(self):
        # A is the right child of the root; sibling B is internal. The DFS
        # must walk B's *rightmost* path so the taker is adjacent to A.
        # Build by hand: left internal with two leaves; right a leaf.
        root = PartitionNode(0, 400)
        left = PartitionNode(0, 200, parent=root)
        right = PartitionNode(200, 400, ExtentList.single(200, 200), parent=root)
        ll = PartitionNode(0, 100, ExtentList.single(0, 100), parent=left)
        lr = PartitionNode(100, 200, ExtentList.single(100, 100), parent=left)
        left.left, left.right = ll, lr
        root.left, root.right = left, right
        tree = PartitionTree(root)
        tree.validate()
        # Remove `right` (A, the right sibling); B = left is internal.
        survivor = tree.remove_leaf(right)
        tree.validate()
        # DFS right-first from B finds lr, which absorbs A's region.
        assert survivor is lr
        assert survivor.lo == 100 and survivor.hi == 400
        assert survivor.covered_bytes == 300
        # The untouched leaf keeps its region.
        assert ll.lo == 0 and ll.hi == 100

    def test_figure5b_left_removal_takes_leftmost(self):
        root = PartitionNode(0, 400)
        left = PartitionNode(0, 200, ExtentList.single(0, 200), parent=root)
        right = PartitionNode(200, 400, parent=root)
        rl = PartitionNode(200, 300, ExtentList.single(200, 100), parent=right)
        rr = PartitionNode(300, 400, ExtentList.single(300, 100), parent=right)
        right.left, right.right = rl, rr
        root.left, root.right = left, right
        tree = PartitionTree(root)
        survivor = tree.remove_leaf(left)
        tree.validate()
        assert survivor is rl  # leftmost leaf of the right subtree
        assert survivor.lo == 0 and survivor.hi == 300
        assert rr.lo == 300 and rr.hi == 400

    def test_cannot_remove_root(self):
        tree = PartitionTree.build(dense(10), msg_ind=100)
        with pytest.raises(PartitionError):
            tree.remove_leaf(tree.root)

    def test_remove_internal_rejected(self):
        tree = PartitionTree.build(dense(400), msg_ind=100)
        with pytest.raises(PartitionError):
            tree.remove_leaf(tree.root)


@settings(deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 5_000), st.integers(1, 400)),
        min_size=1,
        max_size=15,
    ),
    st.integers(16, 512),
    st.lists(st.integers(0, 30), max_size=10),
)
def test_property_surgery_preserves_invariants(pairs, msg_ind, removals):
    cov = ExtentList.from_pairs(pairs)
    tree = PartitionTree.build(cov, msg_ind=msg_ind)
    tree.validate()
    assert tree.total_coverage() == cov
    for pick in removals:
        leaves = tree.leaves()
        if len(leaves) <= 1:
            break
        tree.remove_leaf(leaves[pick % len(leaves)])
        tree.validate()
        # Surgery never loses or duplicates bytes.
        assert tree.total_coverage() == cov
        assert sum(l.covered_bytes for l in tree.leaves()) == cov.total


def _shape(tree):
    """(lo, hi, coverage-pairs-or-None) for every node, preorder."""
    out = []

    def walk(node):
        cov = node.coverage
        out.append(
            (
                node.lo,
                node.hi,
                None
                if cov is None
                else tuple(zip(cov.starts.tolist(), cov.ends.tolist())),
            )
        )
        if not node.is_leaf:
            walk(node.left)
            walk(node.right)

    walk(tree.root)
    return out


class TestMedianFallback:
    def test_align_snap_never_leaves_oversized_leaf(self):
        """Regression: an align hook whose snaps all land outside the
        data (here: everything snaps to 0) used to make ``build`` give
        up splitting, leaving leaves far above ``msg_ind``. The raw
        covered-byte median must be tried as a fallback."""
        cov = ExtentList.single(60, 40)
        tree = PartitionTree.build(cov, msg_ind=8, align=lambda off: 0)
        tree.validate()
        assert all(l.covered_bytes <= 8 for l in tree.leaves())
        assert tree.total_coverage() == cov

    def test_snap_still_preferred_when_valid(self):
        align = lambda off: (off // 64) * 64
        tree = PartitionTree.build(dense(1024), msg_ind=256, align=align)
        for leaf in tree.leaves()[:-1]:
            assert leaf.hi % 64 == 0


class TestBuildIndexed:
    @pytest.mark.parametrize(
        "pairs,msg_ind",
        [
            ([(0, 1000)], 100),
            ([(0, 300), (500, 800), (1000, 1424)], 128),
            ([(60, 70)], 5),
            ([(900, 1000)], 50),
            ([(0, 1), (10, 11)], 1),
        ],
    )
    def test_matches_object_build(self, pairs, msg_ind):
        cov = ExtentList(
            [a for a, _ in pairs], [b for _, b in pairs]
        )
        for align in (None, lambda off: (off // 64) * 64, lambda off: 0):
            a = PartitionTree.build(cov, msg_ind=msg_ind, align=align)
            b = PartitionTree.build_indexed(cov, msg_ind=msg_ind, align=align)
            b.validate()
            assert _shape(a) == _shape(b)

    def test_matches_with_region(self):
        cov = ExtentList.single(900, 100)
        a = PartitionTree.build(cov, msg_ind=50, region=Extent(0, 1000))
        b = PartitionTree.build_indexed(cov, msg_ind=50, region=Extent(0, 1000))
        assert _shape(a) == _shape(b)

    def test_empty_coverage_rejected(self):
        with pytest.raises(PartitionError):
            PartitionTree.build_indexed(ExtentList.empty(), msg_ind=10)
