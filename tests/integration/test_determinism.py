"""Determinism and cross-strategy invariants.

Simulation results must be exactly reproducible from (workload, machine,
seed) — benchmarks and the paper-vs-measured tables depend on it — and
independent of strategy, the same workload must put the same bytes on
disk.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import scaled_testbed
from repro.core import MemoryConsciousCollectiveIO, MemoryConsciousConfig
from repro.io import CollectiveHints, TwoPhaseCollectiveIO, make_context
from repro.util import ExtentList, kib, mib
from repro.workloads import IORWorkload

CFG = MemoryConsciousConfig(
    msg_ind=kib(256), msg_group=mib(2), nah=2, mem_min=kib(64),
    buffer_floor=kib(16),
)


def run_once(strategy, seed=5, variance=True):
    machine = scaled_testbed(4, cores_per_node=4)
    ctx = make_context(
        machine, 8, procs_per_node=2, seed=seed, track_data=True,
        hints=CollectiveHints(cb_buffer_size=kib(256)),
    )
    if variance:
        ctx.cluster.apply_memory_variance(
            ctx.rng, mean_available=kib(512), std=mib(2)
        )
    workload = IORWorkload(8, block_size=kib(256), transfer_size=kib(32))
    f = ctx.pfs.open("d")
    res = strategy.write(ctx, f, workload.requests(with_data=True))
    return res, f


class TestDeterminism:
    def test_same_seed_identical_results(self):
        r1, _ = run_once(MemoryConsciousCollectiveIO(CFG), seed=5)
        r2, _ = run_once(MemoryConsciousCollectiveIO(CFG), seed=5)
        assert r1.elapsed == r2.elapsed
        assert r1.n_rounds == r2.n_rounds
        assert [a.rank for a in r1.aggregators] == [a.rank for a in r2.aggregators]
        assert r1.shuffle_inter_bytes == r2.shuffle_inter_bytes

    def test_different_seed_changes_memory_plan(self):
        r1, _ = run_once(MemoryConsciousCollectiveIO(CFG), seed=5)
        r2, _ = run_once(MemoryConsciousCollectiveIO(CFG), seed=6)
        # Different memory draws -> (almost surely) different plans.
        same = (
            r1.elapsed == r2.elapsed
            and [a.buffer_bytes for a in r1.aggregators]
            == [a.buffer_bytes for a in r2.aggregators]
        )
        assert not same

    def test_baseline_is_seed_independent_without_variance(self):
        r1, _ = run_once(TwoPhaseCollectiveIO(), seed=5, variance=False)
        r2, _ = run_once(TwoPhaseCollectiveIO(), seed=77, variance=False)
        assert r1.elapsed == r2.elapsed


class TestCrossStrategyEquivalence:
    def test_identical_file_images(self):
        _, f1 = run_once(TwoPhaseCollectiveIO())
        _, f2 = run_once(MemoryConsciousCollectiveIO(CFG))
        assert f1.image.snapshot() == f2.image.snapshot()

    def test_identical_application_bytes(self):
        r1, _ = run_once(TwoPhaseCollectiveIO())
        r2, _ = run_once(MemoryConsciousCollectiveIO(CFG))
        assert r1.nbytes == r2.nbytes


class TestConservation:
    def test_shuffle_plus_coverage_accounting(self):
        res, _ = run_once(MemoryConsciousCollectiveIO(CFG))
        total = 8 * kib(256)
        # Every requested byte is shuffled exactly once to an aggregator.
        assert res.shuffle_bytes == total
        # The transfer phase moved shuffle + I/O bytes.
        transfer = res.trace.phases("transfer")[0]
        assert transfer.bytes_moved == 2 * total
