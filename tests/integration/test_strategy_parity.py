"""Differential parity: every workload x every strategy, same file bytes.

The registries are the source of truth — the matrix is generated from
``api.WORKLOAD_NAMES`` x ``api.STRATEGY_CHOICES``, so registering a new
workload or strategy automatically enrolls it here. For each cell the
final :class:`~repro.fs.FileImage` must equal the closed-form expected
pattern over the workload's union (and therefore every strategy's image
is bit-identical to every other's), and the telemetry byte identity
``total == shuffle_intra + shuffle_inter + io`` must hold.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import STRATEGY_CHOICES, WORKLOAD_NAMES, Experiment
from repro.cluster import scaled_testbed
from repro.mpi import pattern_bytes
from repro.util import ExtentList, kib, mib

# Small per-workload parameters: big enough to exercise multi-round
# aggregation at a 1 MiB collective buffer, small enough for a full
# byte-tracked matrix to stay fast.
PARAMS: dict[str, dict] = {
    "ior": {"block_size": kib(256), "transfer_size": kib(32)},
    "ior-segmented": {"block_size": kib(256)},
    "coll_perf": {"array_edge": 16},
    "file-per-task": {"task_bytes": kib(32), "tasks_per_rank": 3,
                      "layout": "interleaved"},
    "nested-strided": {"block": kib(8), "inner_count": 3, "outer_count": 3,
                       "hole_factor": 2},
    "hotspot": {"total_bytes": mib(2), "hot_fraction": 0.65, "hot_ranks": 2},
}


def test_params_cover_every_registered_workload():
    """A new workload registration must add a row to this matrix."""
    assert set(PARAMS) == set(WORKLOAD_NAMES)


def _experiment(workload: str, strategy: str) -> Experiment:
    return Experiment(
        machine=scaled_testbed(4, cores_per_node=4),
        workload=workload,
        strategy=strategy,
        n_procs=8,
        procs_per_node=2,
        seed=3,
        cb_buffer=mib(1),
        track_data=True,
        workload_params=PARAMS[workload],
    )


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("strategy", STRATEGY_CHOICES)
def test_write_parity_and_byte_conservation(workload, strategy):
    exp = _experiment(workload, strategy)
    ctx = exp.context()
    res = exp.run(ctx=ctx)
    file = ctx.pfs.open(exp.file_name)

    union = ExtentList.union_all([r.extents for r in exp.requests()])
    assert np.array_equal(file.apply_read(union), pattern_bytes(union)), (
        f"{strategy} corrupted {workload}"
    )
    assert res.nbytes == union.total  # workloads are disjoint partitions

    tele = res.telemetry
    assert tele is not None
    assert tele.shuffle_intra_bytes == res.shuffle_intra_bytes
    assert tele.shuffle_inter_bytes == res.shuffle_inter_bytes
    assert tele.total_bytes == (
        tele.shuffle_intra_bytes + tele.shuffle_inter_bytes + tele.io_bytes
    )
    # Every workload byte reaches storage at least once (data sieving's
    # read-modify-write may add envelope traffic on top).
    assert tele.io_bytes >= res.nbytes


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_auto_runs_identically_to_its_pick(workload):
    """Auto is a selector, not a fifth engine: bit-identical results."""
    auto_exp = _experiment(workload, "auto")
    pick = auto_exp.auto_choice().chosen
    fixed_exp = _experiment(workload, pick)

    auto_ctx, fixed_ctx = auto_exp.context(), fixed_exp.context()
    auto_res = auto_exp.run(ctx=auto_ctx)
    fixed_res = fixed_exp.run(ctx=fixed_ctx)

    assert auto_res.extras["auto_strategy"] == pick
    assert auto_res.bandwidth == fixed_res.bandwidth
    assert auto_res.elapsed == fixed_res.elapsed
    assert (
        auto_ctx.pfs.open(auto_exp.file_name).image.snapshot()
        == fixed_ctx.pfs.open(fixed_exp.file_name).image.snapshot()
    )
    # The two spell the same spec, so they share one plan-cache slot.
    assert auto_exp.spec_hash() == fixed_exp.spec_hash()
