"""Property tests on the engine's conservation invariants.

For random workload shapes and memory situations, the engine must
conserve bytes everywhere: shuffle totals equal requested bytes, OST
accounting covers every byte exactly once, and the transfer phase's
resource loads are consistent with the byte flow (network carries at
least the inter-node shuffle, OSTs at least the file bytes).

The faulted variant injects random memory-pressure/stall/OST-degrade
schedules on top of the same workloads: whatever the degradation
controller did — shrink, remerge, paging — every conservation invariant
must still hold, and every aggregation buffer must be released.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import scaled_testbed
from repro.core import MemoryConsciousCollectiveIO, MemoryConsciousConfig
from repro.faults import FaultEvent, FaultRuntime, FaultSpec
from repro.io import CollectiveHints, TwoPhaseCollectiveIO, make_context
from repro.mpi import AccessRequest
from repro.util import ExtentList, kib, mib

pytestmark = pytest.mark.slow

CFG = MemoryConsciousConfig(
    msg_ind=kib(128), msg_group=kib(512), nah=2, mem_min=kib(32),
    buffer_floor=kib(8),
)


def _ctx(seed, mem_kib):
    machine = scaled_testbed(4, cores_per_node=4)
    ctx = make_context(
        machine, 8, procs_per_node=2, seed=seed,
        hints=CollectiveHints(cb_buffer_size=kib(64)),
    )
    ctx.cluster.apply_memory_variance(
        ctx.rng, mean_available=kib(mem_kib), std=mib(1)
    )
    return ctx


def _requests(chunks):
    claimed = ExtentList.empty()
    reqs = []
    for rank in range(8):
        pairs = chunks[rank::8]
        el = ExtentList.from_pairs(pairs).subtract(claimed)
        claimed = claimed.union(el)
        reqs.append(AccessRequest(rank, el))
    return reqs, claimed


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    chunks=st.lists(
        st.tuples(st.integers(0, 1 << 17), st.integers(1, 1 << 11)),
        min_size=2,
        max_size=24,
    ),
    seed=st.integers(0, 1 << 16),
    mem_kib=st.integers(16, 1024),
    strategy_kind=st.sampled_from(["two-phase", "mc"]),
)
def test_byte_conservation(chunks, seed, mem_kib, strategy_kind):
    ctx = _ctx(seed, mem_kib)
    reqs, claimed = _requests(chunks)
    if claimed.is_empty:
        return
    strategy = (
        TwoPhaseCollectiveIO()
        if strategy_kind == "two-phase"
        else MemoryConsciousCollectiveIO(CFG)
    )
    res = strategy.write(ctx, ctx.pfs.open("c"), reqs)
    total = claimed.total

    # 1. Every requested byte shuffled exactly once.
    assert res.shuffle_bytes == total
    # 2. OST accounting covers the workload exactly once.
    assert int(ctx.pfs.ost_utilization().sum()) == total
    # 3. The transfer phase's OST loads carry at least the file bytes
    #    (inflated by request overhead, never deflated).
    transfer = res.trace.phases("transfer")[0]
    ost_load = sum(
        v for k, v in transfer.resource_bytes.items()
        if isinstance(k, tuple) and k[0] == "ost"
    )
    assert ost_load >= total - 1e-6
    # 4. Memory fully released.
    assert all(n.memory.in_use == 0 for n in ctx.cluster.nodes)
    # 5. Simulated time is positive and finite.
    assert 0 < res.elapsed < float("inf")
    # 6. Telemetry audits: per-round byte totals equal shuffle + I/O.
    tele = res.telemetry
    assert tele is not None
    assert tele.shuffle_intra_bytes == res.shuffle_intra_bytes
    assert tele.shuffle_inter_bytes == res.shuffle_inter_bytes
    assert tele.io_bytes == total
    assert tele.total_bytes == res.shuffle_bytes + total


@settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    chunks=st.lists(
        st.tuples(st.integers(0, 1 << 17), st.integers(1, 1 << 11)),
        min_size=2,
        max_size=24,
    ),
    seed=st.integers(0, 1 << 16),
    mem_kib=st.integers(16, 1024),
    strategy_kind=st.sampled_from(["two-phase", "mc"]),
    fault_seed=st.integers(0, 1 << 16),
    n_pressure=st.integers(0, 2),
    fraction=st.floats(0.0, 1.0),
    n_stalls=st.integers(0, 2),
    n_ost=st.integers(0, 2),
)
def test_byte_conservation_under_faults(
    chunks, seed, mem_kib, strategy_kind, fault_seed, n_pressure, fraction,
    n_stalls, n_ost,
):
    ctx = _ctx(seed, mem_kib)
    reqs, claimed = _requests(chunks)
    if claimed.is_empty:
        return
    strategy = (
        TwoPhaseCollectiveIO()
        if strategy_kind == "two-phase"
        else MemoryConsciousCollectiveIO(CFG)
    )
    # a pinned full spike at t=0 guarantees the reaction machinery runs
    # even on single-round schedules; the seeded knobs add more on top
    spec = FaultSpec(
        seed=fault_seed,
        events=(
            FaultEvent(kind="mem_pressure", time=0.0, target=0, fraction=1.0),
        ),
        mem_pressure=n_pressure,
        pressure_fraction=fraction,
        stalls=n_stalls,
        ost_degrade=n_ost,
        horizon=2e-3,
    )
    runtime = FaultRuntime(spec, ctx)
    res = strategy.run(
        ctx, ctx.pfs.open("f"), reqs, kind="write", faults=runtime
    )
    total = claimed.total

    # Same six conservation invariants as the fault-free property —
    # degradation may reshape the schedule, never the bytes.
    assert res.shuffle_bytes == total
    assert int(ctx.pfs.ost_utilization().sum()) == total
    transfer = res.trace.phases("transfer")[0]
    ost_load = sum(
        v for k, v in transfer.resource_bytes.items()
        if isinstance(k, tuple) and k[0] == "ost"
    )
    assert ost_load >= total - 1e-6
    assert all(n.memory.in_use == 0 for n in ctx.cluster.nodes)
    assert 0 < res.elapsed < float("inf")
    tele = res.telemetry
    assert tele is not None
    assert tele.io_bytes == total
    assert tele.total_bytes == res.shuffle_bytes + total
    # the pinned spike must have been observed and reacted to
    assert tele.counters.get("fault_events", 0) >= 1
    assert tele.fault_spans
    assert tele.recovery_cost_s >= 0.0
