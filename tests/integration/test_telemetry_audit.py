"""End-to-end audit: telemetry must account for every byte.

For a full run of each strategy through its real planner, the per-round
telemetry byte totals must equal the result's shuffle totals plus the
file I/O bytes — nothing double-counted, nothing dropped — and the
serialized form must reconstruct exactly.
"""

from __future__ import annotations

import pytest

from repro.cluster import scaled_testbed
from repro.core import MemoryConsciousCollectiveIO, MemoryConsciousConfig
from repro.io import CollectiveHints, IndependentIO, TwoPhaseCollectiveIO, make_context
from repro.metrics.export import dump_results, load_results, telemetry_from_dict
from repro.util import kib, mib
from repro.workloads import IORWorkload

CFG = MemoryConsciousConfig(
    msg_ind=kib(256), msg_group=mib(1), nah=2, mem_min=kib(64),
    buffer_floor=kib(16),
)


def _ctx():
    machine = scaled_testbed(4, cores_per_node=4)
    return make_context(
        machine, 8, procs_per_node=2, seed=11,
        hints=CollectiveHints(cb_buffer_size=kib(256)),
    )


def _strategies():
    return {
        "two-phase": TwoPhaseCollectiveIO(),
        "mc": MemoryConsciousCollectiveIO(CFG),
    }


@pytest.mark.parametrize("name", ["two-phase", "mc"])
def test_telemetry_conserves_bytes_end_to_end(name):
    ctx = _ctx()
    wl = IORWorkload(8, block_size=mib(1), transfer_size=kib(256))
    res = _strategies()[name].write(ctx, ctx.pfs.open("f"), wl.requests())
    tele = res.telemetry
    assert tele is not None

    # Shuffle accounting agrees with the result's own counters.
    assert tele.shuffle_intra_bytes == res.shuffle_intra_bytes
    assert tele.shuffle_inter_bytes == res.shuffle_inter_bytes
    # I/O accounting covers the workload exactly once.
    assert tele.io_bytes == res.nbytes
    # The audit identity from the acceptance criteria.
    assert tele.total_bytes == (
        res.shuffle_intra_bytes + res.shuffle_inter_bytes + res.nbytes
    )
    # Per-round resource charges cover at least the bytes they carry.
    for record in tele.rounds:
        ost_load = sum(
            b for k, b in record.io_resource_bytes.items()
            if isinstance(k, tuple) and k[0] == "ost"
        )
        assert ost_load >= record.io_bytes - 1e-6


@pytest.mark.parametrize("name", ["two-phase", "mc"])
def test_telemetry_round_trips_through_export(name, tmp_path):
    ctx = _ctx()
    wl = IORWorkload(8, block_size=mib(1), transfer_size=kib(256))
    res = _strategies()[name].write(ctx, ctx.pfs.open("f"), wl.requests())
    path = dump_results(tmp_path / "run.json", [res], strategy=name)
    loaded = load_results(path)["results"][0]
    rebuilt = telemetry_from_dict(loaded["telemetry"])
    assert rebuilt.to_dict() == res.telemetry.to_dict()


def test_mc_telemetry_carries_planner_counters():
    ctx = _ctx()
    wl = IORWorkload(8, block_size=mib(1), transfer_size=kib(256))
    res = _strategies()["mc"].write(ctx, ctx.pfs.open("f"), wl.requests())
    counters = res.telemetry.counters
    assert counters["groups"] == res.extras["n_groups"]
    assert counters["remerges"] == res.extras["n_remerges"]
    assert counters["fallbacks"] == res.extras["n_fallbacks"]
    assert "domains" in counters


def test_independent_strategy_has_telemetry():
    ctx = _ctx()
    wl = IORWorkload(8, block_size=mib(1), transfer_size=kib(256))
    res = IndependentIO().write(ctx, ctx.pfs.open("f"), wl.requests())
    tele = res.telemetry
    assert tele is not None
    assert tele.n_rounds == 1
    assert tele.io_bytes == res.nbytes
