"""Integration tests: every strategy moves exactly the right bytes.

The decisive invariant of the whole system: whatever the planner decides
(groups, trees, remerges, rebalances, aggregator placement), the file
image after a collective write equals the image independent I/O would
produce, and reads return exactly what was written — for arbitrary
workloads and memory situations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import scaled_testbed
from repro.core import MemoryConsciousCollectiveIO, MemoryConsciousConfig
from repro.io import (
    CollectiveHints,
    DataSievingIO,
    IndependentIO,
    TwoPhaseCollectiveIO,
    make_context,
)
from repro.mpi import AccessRequest, pattern_bytes
from repro.util import ExtentList, kib, mib
from repro.workloads import (
    CollPerfWorkload,
    IORWorkload,
    ShuffledChunksWorkload,
    SkewedWorkload,
    StridedWorkload,
)

MC_CFG = MemoryConsciousConfig(
    msg_ind=kib(256), msg_group=mib(2), nah=2, mem_min=kib(64),
    buffer_floor=kib(16),
)

STRATEGIES = [
    IndependentIO(),
    DataSievingIO(),
    TwoPhaseCollectiveIO(),
    MemoryConsciousCollectiveIO(MC_CFG),
]

WORKLOADS = [
    IORWorkload(8, block_size=kib(256), transfer_size=kib(32)),
    IORWorkload(8, block_size=kib(256), segmented=True),
    CollPerfWorkload(8, (16, 16, 16)),
    StridedWorkload(8, block=kib(8), count=16),
    ShuffledChunksWorkload(8, chunk=kib(64), chunks_per_proc=4, seed=2),
    SkewedWorkload(8, base_bytes=kib(512), decay=0.6),
]


def make_ctx(**kw):
    machine = scaled_testbed(4, cores_per_node=4)
    kw.setdefault("hints", CollectiveHints(cb_buffer_size=kib(128)))
    kw.setdefault("seed", 17)
    return make_context(machine, 8, procs_per_node=2, track_data=True, **kw)


@pytest.mark.parametrize(
    "strategy", STRATEGIES, ids=lambda s: s.name
)
@pytest.mark.parametrize(
    "workload", WORKLOADS, ids=lambda w: w.name
)
class TestWriteCorrectness:
    def test_file_image_matches_expected(self, strategy, workload):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(1))
        reqs = workload.requests(with_data=True)
        f = ctx.pfs.open("out")
        res = strategy.write(ctx, f, reqs)
        full = ExtentList.union_all([r.extents for r in reqs])
        assert np.array_equal(f.apply_read(full), pattern_bytes(full)), (
            f"{strategy.name} corrupted {workload.name}"
        )
        assert res.elapsed > 0
        assert res.nbytes == sum(r.nbytes for r in reqs)


@pytest.mark.parametrize("strategy", STRATEGIES, ids=lambda s: s.name)
class TestReadCorrectness:
    def test_read_returns_written_bytes(self, strategy):
        workload = IORWorkload(8, block_size=kib(128), transfer_size=kib(16))
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(1))
        reqs = workload.requests(with_data=True)
        f = ctx.pfs.open("out")
        IndependentIO().write(ctx, f, reqs)  # seed the file
        read_reqs = [AccessRequest(r.rank, r.extents) for r in reqs]
        strategy.read(ctx, f, read_reqs)
        for wr, rd in zip(reqs, read_reqs):
            assert np.array_equal(rd.data, wr.data), strategy.name


class TestMemoryStressScenarios:
    """Failure injection: extreme memory situations must not corrupt data
    or deadlock the planner."""

    def _verify(self, ctx, workload):
        reqs = workload.requests(with_data=True)
        f = ctx.pfs.open("out")
        res = MemoryConsciousCollectiveIO(MC_CFG).write(ctx, f, reqs)
        full = ExtentList.union_all([r.extents for r in reqs])
        assert np.array_equal(f.apply_read(full), pattern_bytes(full))
        return res

    def test_all_nodes_starved(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(0)
        res = self._verify(ctx, IORWorkload(8, block_size=kib(128), transfer_size=kib(16)))
        assert res.elapsed > 0

    def test_single_rich_node(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(0)
        cap = ctx.machine.node.mem_capacity
        ctx.cluster.nodes[2].memory.set_reserved(cap - mib(8))
        res = self._verify(ctx, IORWorkload(8, block_size=kib(128), transfer_size=kib(16)))
        # Every aggregator should sit on the only viable node.
        assert all(a.node_id == 2 for a in res.aggregators)

    def test_extreme_variance(self):
        ctx = make_ctx()
        ctx.cluster.apply_memory_variance(
            ctx.rng, mean_available=kib(256), std=mib(16)
        )
        self._verify(ctx, CollPerfWorkload(8, (16, 16, 16)))

    def test_one_rank_owns_everything(self):
        ctx = make_ctx()
        ctx.cluster.set_uniform_available(mib(1))
        el = ExtentList.single(0, mib(2))
        reqs = [AccessRequest(0, el, pattern_bytes(el))] + [
            AccessRequest(p, ExtentList.empty()) for p in range(1, 8)
        ]
        f = ctx.pfs.open("out")
        MemoryConsciousCollectiveIO(MC_CFG).write(ctx, f, reqs)
        assert np.array_equal(f.apply_read(el), pattern_bytes(el))


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    blocks=st.lists(
        st.tuples(st.integers(0, 1 << 18), st.integers(1, 1 << 12)),
        min_size=1,
        max_size=24,
    ),
    seed=st.integers(0, 2**16),
)
def test_property_mc_cio_writes_arbitrary_patterns(blocks, seed):
    """Random (possibly overlapping across ranks!) extents, random memory:
    the union of what was requested is exactly what lands on disk."""
    ctx = make_ctx(seed=seed)
    ctx.cluster.apply_memory_variance(
        ctx.rng, mean_available=kib(512), std=mib(1)
    )
    # Deal blocks to ranks round-robin; dedupe overlaps rank-internally.
    per_rank: list[list[tuple[int, int]]] = [[] for _ in range(8)]
    for i, pair in enumerate(blocks):
        per_rank[i % 8].append(pair)
    reqs = []
    claimed = ExtentList.empty()
    for rank, pairs in enumerate(per_rank):
        el = ExtentList.from_pairs(pairs).subtract(claimed)
        claimed = claimed.union(el)
        reqs.append(
            AccessRequest(rank, el, pattern_bytes(el) if not el.is_empty else None)
        )
    if claimed.is_empty:
        return
    f = ctx.pfs.open("fuzz")
    MemoryConsciousCollectiveIO(MC_CFG).write(ctx, f, reqs)
    assert np.array_equal(f.apply_read(claimed), pattern_bytes(claimed))
