"""Scale smoke tests: the planner and engine at 1000+ simulated ranks.

No byte tracking (too much data) — these check that planning stays
feasible, balanced, and fast at the paper's larger scale, and that the
invariants (coverage partition, memory bounds, Nah) hold there too.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import testbed_640
from repro.core import MemoryConsciousCollectiveIO, auto_tune
from repro.io import CollectiveHints, TwoPhaseCollectiveIO, make_context
from repro.util import ExtentList, mib
from repro.workloads import IORWorkload


@pytest.fixture(scope="module")
def machine():
    return testbed_640()


@pytest.fixture(scope="module")
def config(machine):
    return auto_tune(machine).as_config()


class TestThousandRanks:
    N = 1080

    def _ctx(self, machine, mem):
        ctx = make_context(
            machine, self.N, procs_per_node=12, seed=7,
            hints=CollectiveHints(cb_buffer_size=mem),
        )
        ctx.cluster.apply_memory_variance(
            ctx.rng, mean_available=mem, std=mib(50)
        )
        return ctx

    def test_plan_partitions_workload(self, machine, config):
        wl = IORWorkload(self.N, block_size=mib(4), transfer_size=mib(2))
        ctx = self._ctx(machine, mib(8))
        domains, stats, groups = MemoryConsciousCollectiveIO(config).plan(
            ctx, wl.requests()
        )
        union = ExtentList.union_all([d.coverage for d in domains])
        assert union.total == wl.total_bytes()
        assert sum(d.covered_bytes for d in domains) == wl.total_bytes()
        # Memory never over-promised per node.
        per_node: dict[int, int] = {}
        for d in domains:
            node = ctx.comm.node_of(d.aggregator)
            per_node[node] = per_node.get(node, 0) + d.buffer_bytes
        for node_id, used in per_node.items():
            assert used <= ctx.cluster.nodes[node_id].available_memory

    def test_rounds_reasonably_balanced(self, machine, config):
        wl = IORWorkload(self.N, block_size=mib(4), transfer_size=mib(2))
        ctx = self._ctx(machine, mib(8))
        domains, _, _ = MemoryConsciousCollectiveIO(config).plan(ctx, wl.requests())
        rounds = [d.rounds() for d in domains]
        total_buffer = sum(d.buffer_bytes for d in domains)
        ideal = wl.total_bytes() / total_buffer
        assert max(rounds) <= max(4.0 * ideal, 8.0)

    def test_execution_completes_quickly(self, machine, config):
        wl = IORWorkload(self.N, block_size=mib(4), transfer_size=mib(2))
        ctx = self._ctx(machine, mib(8))
        start = time.monotonic()
        res = MemoryConsciousCollectiveIO(config).write(
            ctx, ctx.pfs.open("f"), wl.requests()
        )
        assert time.monotonic() - start < 60.0
        assert res.bandwidth > 0

    def test_baseline_at_scale(self, machine):
        wl = IORWorkload(self.N, block_size=mib(4), transfer_size=mib(2))
        ctx = make_context(
            machine, self.N, procs_per_node=12, seed=7,
            hints=CollectiveHints(cb_buffer_size=mib(8)),
        )
        res = TwoPhaseCollectiveIO().write(ctx, ctx.pfs.open("f"), wl.requests())
        assert res.n_aggregators == 90  # one per node
        assert res.bandwidth > 0
