"""Tests for the phase trace recorder."""

from __future__ import annotations

import pytest

from repro.sim import TraceRecorder


class TestTraceRecorder:
    def test_clock_advances(self):
        tr = TraceRecorder()
        tr.record("a", 1.5)
        tr.record("b", 0.5)
        assert tr.now == pytest.approx(2.0)

    def test_phase_start_times_chain(self):
        tr = TraceRecorder()
        p1 = tr.record("a", 1.0)
        p2 = tr.record("b", 2.0)
        assert p1.start == 0.0
        assert p1.end == 1.0
        assert p2.start == 1.0
        assert p2.end == 3.0

    def test_filtering_and_totals(self):
        tr = TraceRecorder()
        tr.record("shuffle", 1.0, bytes_moved=100)
        tr.record("io", 2.0, bytes_moved=300)
        tr.record("shuffle", 0.5, bytes_moved=50)
        assert len(tr.phases("shuffle")) == 2
        assert tr.total_time("shuffle") == pytest.approx(1.5)
        assert tr.total_bytes("io") == 300
        assert tr.total_bytes() == 450
        assert len(tr) == 3

    def test_resource_totals(self):
        tr = TraceRecorder()
        tr.record("a", 1.0, resource_bytes={"x": 10.0, "y": 5.0})
        tr.record("b", 1.0, resource_bytes={"x": 7.0})
        totals = tr.resource_totals()
        assert totals["x"] == pytest.approx(17.0)
        assert totals["y"] == pytest.approx(5.0)

    def test_meta_kwargs(self):
        tr = TraceRecorder()
        rec = tr.record("plan", 0.1, n_domains=5)
        assert rec.meta == {"n_domains": 5}

    def test_as_dict_preserves_nested_meta(self):
        tr = TraceRecorder()
        tr.record(
            "transfer",
            1.0,
            resource_bytes={("ost", 3): 10.0},
            per_node={("membw", 0): 2.0, ("membw", 1): 3.0},
            levels=[1, 2, [3, 4]],
            note="x",
            opaque=object(),  # not JSON-safe: dropped, not a crash
        )
        d = tr.to_dicts()[0]
        assert d["resource_bytes"] == {"ost:3": 10.0}
        assert d["meta"]["per_node"] == {"membw:0": 2.0, "membw:1": 3.0}
        assert d["meta"]["levels"] == [1, 2, [3, 4]]
        assert d["meta"]["note"] == "x"
        assert "opaque" not in d["meta"]
