"""Tests for the fluid flow solver (max-min fairness, bottleneck mode)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Flow, FluidSimulation, bottleneck_time, max_min_rates, solve_phase
from repro.util import SimulationError


class TestFlowValidation:
    def test_negative_size_rejected(self):
        with pytest.raises(SimulationError):
            Flow(-1, ("r",))

    def test_no_resources_rejected(self):
        with pytest.raises(SimulationError):
            Flow(1, ())

    def test_override_must_reference_member_resource(self):
        with pytest.raises(SimulationError):
            Flow(1, ("a",), resource_sizes={"b": 2})

    def test_charge_on(self):
        f = Flow(10, ("a", "b"), resource_sizes={"b": 25})
        assert f.charge_on("a") == 10
        assert f.charge_on("b") == 25


class TestMaxMinRates:
    def test_single_flow_gets_capacity(self):
        rates = max_min_rates([Flow(100, ("r",))], {"r": 50.0})
        assert rates[0] == pytest.approx(50.0)

    def test_equal_sharing(self):
        flows = [Flow(1, ("r",)) for _ in range(4)]
        rates = max_min_rates(flows, {"r": 100.0})
        assert np.allclose(rates, 25.0)

    def test_classic_three_flow_example(self):
        # f0 crosses A and B; f1 crosses A; f2 crosses B.
        # A: cap 10, B: cap 20 -> f0 and f1 share A at 5 each; f2 gets
        # the rest of B = 15.
        flows = [Flow(1, ("A", "B")), Flow(1, ("A",)), Flow(1, ("B",))]
        rates = max_min_rates(flows, {"A": 10.0, "B": 20.0})
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(5.0)
        assert rates[2] == pytest.approx(15.0)

    def test_capacity_conservation(self):
        flows = [
            Flow(1, ("A", "B")),
            Flow(1, ("A",)),
            Flow(1, ("B", "C")),
            Flow(1, ("C",)),
        ]
        caps = {"A": 8.0, "B": 12.0, "C": 4.0}
        rates = max_min_rates(flows, caps)
        for key, cap in caps.items():
            load = sum(
                r for r, f in zip(rates, flows) if key in f.resources
            )
            assert load <= cap + 1e-9

    def test_unknown_resource_rejected(self):
        with pytest.raises(SimulationError):
            max_min_rates([Flow(1, ("ghost",))], {"r": 1.0})

    def test_zero_capacity_rejected(self):
        with pytest.raises(SimulationError):
            max_min_rates([Flow(1, ("r",))], {"r": 0.0})


class TestBottleneck:
    def test_single_resource(self):
        out = bottleneck_time([Flow(100, ("r",)), Flow(50, ("r",))], {"r": 50.0})
        assert out.duration == pytest.approx(3.0)
        assert out.resource_bytes["r"] == 150

    def test_max_over_resources(self):
        flows = [Flow(100, ("a", "b"))]
        out = bottleneck_time(flows, {"a": 10.0, "b": 100.0})
        assert out.duration == pytest.approx(10.0)

    def test_resource_size_override(self):
        flows = [Flow(100, ("net", "disk"), resource_sizes={"disk": 200})]
        out = bottleneck_time(flows, {"net": 100.0, "disk": 100.0})
        assert out.duration == pytest.approx(2.0)
        assert out.resource_bytes["disk"] == pytest.approx(200)
        assert out.resource_bytes["net"] == pytest.approx(100)

    def test_empty(self):
        assert bottleneck_time([], {}).duration == 0.0


class TestFluid:
    def test_single_flow(self):
        out = FluidSimulation({"r": 10.0}).run([Flow(100, ("r",))])
        assert out.duration == pytest.approx(10.0)

    def test_rate_reallocation_after_finish(self):
        # Two flows share r (cap 10): both run at 5. The small one (25 B)
        # finishes at t = 25/5 = 5; the big one (75 B) has 50 B left and
        # then gets the full 10 -> 5 s more. Total 10 s.
        out = FluidSimulation({"r": 10.0}).run(
            [Flow(25, ("r",)), Flow(75, ("r",))]
        )
        assert out.finish_times[0] == pytest.approx(5.0)
        assert out.finish_times[1] == pytest.approx(10.0)

    def test_zero_size_flows_finish_immediately(self):
        out = FluidSimulation({"r": 1.0}).run([Flow(0, ("r",)), Flow(10, ("r",))])
        assert out.finish_times[0] == 0.0
        assert out.finish_times[1] == pytest.approx(10.0)

    def test_fluid_never_beats_bottleneck(self):
        flows = [Flow(30, ("a",)), Flow(70, ("a", "b")), Flow(50, ("b",))]
        caps = {"a": 10.0, "b": 20.0}
        fl = FluidSimulation(caps).run(flows)
        bn = bottleneck_time(flows, caps)
        # The bottleneck estimate is a lower bound on the fluid makespan.
        assert fl.duration >= bn.duration - 1e-9


class TestSolvePhase:
    def test_dispatch(self):
        flows = [Flow(10, ("r",))]
        caps = {"r": 10.0}
        assert solve_phase(flows, caps, mode="bottleneck").mode == "bottleneck"
        assert solve_phase(flows, caps, mode="fluid").mode == "fluid"

    def test_unknown_mode(self):
        with pytest.raises(SimulationError):
            solve_phase([], {}, mode="quantum")


@given(
    st.lists(
        st.tuples(
            st.floats(0.0, 1e6),
            st.sets(st.sampled_from(["a", "b", "c", "d"]), min_size=1),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_property_rates_feasible_and_maximal(flow_specs):
    caps = {"a": 100.0, "b": 37.0, "c": 290.0, "d": 55.0}
    flows = [Flow(size, tuple(sorted(res))) for size, res in flow_specs]
    rates = max_min_rates(flows, caps)
    assert np.all(rates > 0)
    # Feasibility on every resource.
    for key, cap in caps.items():
        load = sum(r for r, f in zip(rates, flows) if key in f.resources)
        assert load <= cap * (1 + 1e-9)
    # Max-min property (weak form): every flow is bottlenecked somewhere —
    # some resource it crosses is (nearly) fully allocated.
    for rate, flow in zip(rates, flows):
        saturated = False
        for key in flow.resources:
            load = sum(
                r for r, f in zip(rates, flows) if key in f.resources
            )
            if load >= caps[key] * (1 - 1e-6):
                saturated = True
        assert saturated
