"""Tests for DES resource primitives (semaphore, store, bandwidth pipe)."""

from __future__ import annotations

import pytest

from repro.sim import BandwidthPipe, Delay, Semaphore, Simulator, Store
from repro.util import ResourceError


class TestSemaphore:
    def test_serializes_beyond_capacity(self):
        sim = Simulator()
        sem = Semaphore(sim, 2)
        log = []

        def worker(tag):
            yield from sem.acquire()
            log.append((tag, "in", sim.now))
            yield Delay(1.0)
            sem.release()
            log.append((tag, "out", sim.now))

        for t in range(4):
            sim.process(worker(t), f"w{t}")
        sim.run()
        ins = {tag: t for tag, what, t in log if what == "in"}
        # First two enter at 0, the next two at 1 (FIFO).
        assert ins[0] == 0.0 and ins[1] == 0.0
        assert ins[2] == 1.0 and ins[3] == 1.0

    def test_release_without_acquire(self):
        sim = Simulator()
        sem = Semaphore(sim, 1)
        with pytest.raises(ResourceError):
            sem.release()

    def test_capacity_validated(self):
        with pytest.raises(ResourceError):
            Semaphore(Simulator(), 0)

    def test_locked_and_available(self):
        sim = Simulator()
        sem = Semaphore(sim, 1)

        def taker():
            yield from sem.acquire()

        sim.run_process(taker())
        assert sem.locked()
        assert sem.available == 0


class TestStore:
    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer():
            for i in range(3):
                yield from store.put(i)
                yield Delay(1.0)

        def consumer():
            for _ in range(3):
                item = yield from store.get()
                got.append((item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert [g[0] for g in got] == [0, 1, 2]

    def test_consumer_blocks_until_item(self):
        sim = Simulator()
        store = Store(sim)
        times = []

        def consumer():
            item = yield from store.get()
            times.append((item, sim.now))

        def late_producer():
            yield Delay(5.0)
            yield from store.put("x")

        sim.process(consumer())
        sim.process(late_producer())
        sim.run()
        assert times == [("x", 5.0)]

    def test_bounded_put_blocks(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        events = []

        def producer():
            yield from store.put("a")
            events.append(("put-a", sim.now))
            yield from store.put("b")  # blocks until consumer takes "a"
            events.append(("put-b", sim.now))

        def consumer():
            yield Delay(3.0)
            item = yield from store.get()
            events.append(("got", item, sim.now))

        sim.process(producer())
        sim.process(consumer())
        sim.run()
        assert ("put-a", 0.0) in events
        put_b = next(e for e in events if e[0] == "put-b")
        assert put_b[1] >= 3.0


class TestBandwidthPipe:
    def test_single_transfer_exact(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, capacity=100.0)

        def xfer():
            end = yield from pipe.transfer(250.0)
            return end

        end = sim.run_process(xfer())
        assert end == pytest.approx(2.5)
        assert pipe.bytes_served == pytest.approx(250.0)

    def test_equal_sharing_two_transfers(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, capacity=100.0)
        ends = {}

        def xfer(tag, nbytes):
            ends[tag] = yield from pipe.transfer(nbytes)

        sim.process(xfer("a", 100.0))
        sim.process(xfer("b", 100.0))
        sim.run()
        # both at 50 B/s -> 2 s each
        assert ends["a"] == pytest.approx(2.0)
        assert ends["b"] == pytest.approx(2.0)

    def test_late_joiner_slows_first(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, capacity=100.0)
        ends = {}

        def first():
            ends["first"] = yield from pipe.transfer(150.0)

        def second():
            yield Delay(1.0)
            ends["second"] = yield from pipe.transfer(50.0)

        sim.process(first())
        sim.process(second())
        sim.run()
        # first: 100 B in 1 s alone, then 50 B at 50 B/s -> ends at 2.0
        assert ends["first"] == pytest.approx(2.0)
        # second: 50 B at 50 B/s from t=1 -> 2.0
        assert ends["second"] == pytest.approx(2.0)
        assert pipe.n_active == 0
        assert pipe.bytes_served == pytest.approx(200.0)

    def test_zero_byte_transfer(self):
        sim = Simulator()
        pipe = BandwidthPipe(sim, capacity=10.0)

        def xfer():
            return (yield from pipe.transfer(0.0))

        assert sim.run_process(xfer()) == 0.0

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ResourceError):
            BandwidthPipe(sim, 0.0)
        pipe = BandwidthPipe(sim, 1.0)

        def bad():
            yield from pipe.transfer(-1.0)

        sim.process(bad())
        with pytest.raises(ResourceError):
            sim.run()
