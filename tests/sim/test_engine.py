"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim import Delay, Simulator
from repro.util import SimulationError


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_callbacks_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_same_time_fifo(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        token = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(token)
        sim.run()
        assert fired == []

    def test_run_until_bounds_time(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_until_in_past_does_not_rewind_clock(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.schedule(10.0, lambda: None)
        sim.run(until=7.0)
        assert sim.now == 7.0
        # Horizon earlier than the current clock: a no-op, not a rewind.
        sim.run(until=2.0)
        assert sim.now == 7.0

    def test_run_until_advances_monotonically_across_calls(self):
        sim = Simulator()
        sim.schedule(100.0, lambda: None)
        sim.run(until=4.0)
        assert sim.now == 4.0
        sim.run(until=3.0)
        assert sim.now == 4.0
        sim.run(until=8.0)
        assert sim.now == 8.0

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(2.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 3.0)]

    def test_runaway_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="runaway"):
            sim.run(max_events=1000)


class TestProcesses:
    def test_delay_sequence(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield Delay(1.5)
            trace.append(sim.now)
            yield Delay(0.5)
            trace.append(sim.now)
            return "done"

        result = sim.run_process(proc())
        assert result == "done"
        assert trace == [0.0, 1.5, 2.0]

    def test_event_wait_and_trigger(self):
        sim = Simulator()
        ev = sim.event("gate")
        got = []

        def waiter():
            value = yield ev
            got.append((value, sim.now))

        def firer():
            yield Delay(2.0)
            ev.trigger(42)

        sim.process(waiter(), "waiter")
        sim.process(firer(), "firer")
        sim.run()
        assert got == [(42, 2.0)]

    def test_event_triggered_before_wait(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger("early")
        got = []

        def waiter():
            value = yield ev
            got.append(value)

        sim.process(waiter())
        sim.run()
        assert got == ["early"]

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.trigger()
        with pytest.raises(SimulationError):
            ev.trigger()

    def test_process_waits_for_process(self):
        sim = Simulator()
        order = []

        def child():
            yield Delay(3.0)
            order.append("child")
            return 7

        def parent():
            proc = sim.process(child(), "child")
            value = yield proc
            order.append(("parent", value, sim.now))

        sim.process(parent(), "parent")
        sim.run()
        assert order == ["child", ("parent", 7, 3.0)]

    def test_bad_yield_raises(self):
        sim = Simulator()

        def proc():
            yield "not a delay"

        sim.process(proc(), "bad")
        with pytest.raises(SimulationError, match="unsupported"):
            sim.run()

    def test_all_of_waits_for_every_process(self):
        sim = Simulator()

        def worker(t):
            yield Delay(t)
            return t

        procs = [sim.process(worker(t), f"w{t}") for t in (1.0, 3.0, 2.0)]
        sim.run_process(Simulator.all_of(sim, procs))
        assert sim.now == 3.0
        assert all(p.done for p in procs)
