"""Tests for MPI derived datatypes and flattening."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi import (
    BYTE,
    DOUBLE,
    INT,
    BasicType,
    contiguous,
    hindexed,
    indexed,
    subarray,
    vector,
)
from repro.util import DatatypeError


class TestBasicTypes:
    def test_sizes(self):
        assert BYTE.size == 1
        assert INT.size == 4
        assert DOUBLE.size == 8

    def test_flatten(self):
        assert DOUBLE.flattened.to_pairs() == [(0, 8)]
        assert DOUBLE.is_contiguous

    def test_invalid_size(self):
        with pytest.raises(DatatypeError):
            BasicType("BAD", 0)


class TestContiguous:
    def test_size_and_extent(self):
        t = contiguous(10, INT)
        assert t.size == 40
        assert t.extent == 40
        assert t.is_contiguous
        assert t.flattened.to_pairs() == [(0, 40)]

    def test_nested(self):
        t = contiguous(3, contiguous(2, BYTE))
        assert t.size == 6
        assert t.flattened.to_pairs() == [(0, 6)]

    def test_zero_count(self):
        t = contiguous(0, INT)
        assert t.size == 0
        assert t.flattened.is_empty

    def test_negative_count_rejected(self):
        with pytest.raises(DatatypeError):
            contiguous(-1, INT)


class TestVector:
    def test_basic(self):
        t = vector(3, 2, 4, BYTE)
        assert t.size == 6
        assert t.extent == 10  # (3-1)*4 + 2
        assert t.flattened.to_pairs() == [(0, 2), (4, 2), (8, 2)]

    def test_element_granularity(self):
        t = vector(2, 1, 3, INT)
        assert t.flattened.to_pairs() == [(0, 4), (12, 4)]
        assert t.extent == 16

    def test_dense_vector_is_contiguous(self):
        t = vector(4, 2, 2, BYTE)
        assert t.flattened.to_pairs() == [(0, 8)]

    def test_overlapping_stride_rejected(self):
        with pytest.raises(DatatypeError):
            vector(3, 4, 2, BYTE)

    def test_flatten_count_tiles_by_extent(self):
        t = vector(2, 1, 2, BYTE)  # bytes at 0 and 2, extent 3
        el = t.flatten_count(2)
        assert el.to_pairs() == [(0, 1), (2, 2), (5, 1)]


class TestIndexed:
    def test_basic(self):
        t = indexed([2, 1], [0, 4], BYTE)
        assert t.size == 3
        assert t.flattened.to_pairs() == [(0, 2), (4, 1)]

    def test_element_granularity(self):
        t = indexed([1, 1], [0, 2], INT)
        assert t.flattened.to_pairs() == [(0, 4), (8, 4)]
        assert t.extent == 12

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DatatypeError):
            indexed([1, 2], [0], BYTE)

    def test_hindexed_byte_displacements(self):
        t = hindexed([2, 2], [0, 9], INT)
        assert t.flattened.to_pairs() == [(0, 8), (9, 8)]
        assert t.size == 16

    def test_hindexed_overlap_detected(self):
        t = hindexed([2, 2], [0, 7], INT)  # 8 B at 0 and 8 B at 7 overlap
        with pytest.raises(DatatypeError):
            _ = t.flattened


class TestSubarray:
    def test_2d_block(self):
        # 4x4 ints, 2x2 block at (1, 1).
        t = subarray([4, 4], [2, 2], [1, 1], INT)
        assert t.size == 16
        assert t.extent == 64
        # rows 1..2, cols 1..2 -> offsets (1*4+1)*4=20 and (2*4+1)*4=36
        assert t.flattened.to_pairs() == [(20, 8), (36, 8)]

    def test_3d_block_structure(self):
        t = subarray([4, 4, 4], [2, 2, 2], [0, 0, 0], DOUBLE)
        # 2*2 = 4 contiguous pencils of 2 doubles
        assert len(t.flattened) == 4
        assert t.size == 64
        assert all(length == 16 for _, length in t.flattened.to_pairs())

    def test_full_array_is_contiguous(self):
        t = subarray([4, 4], [4, 4], [0, 0], INT)
        assert t.flattened.to_pairs() == [(0, 64)]

    def test_fortran_order_transposes(self):
        c = subarray([4, 8], [1, 8], [2, 0], BYTE)  # full row in C
        f = subarray([8, 4], [8, 1], [0, 2], BYTE, order="F")
        assert c.flattened == f.flattened

    def test_validation(self):
        with pytest.raises(DatatypeError):
            subarray([4], [5], [0], BYTE)  # subsize > size
        with pytest.raises(DatatypeError):
            subarray([4], [2], [3], BYTE)  # start + sub > size
        with pytest.raises(DatatypeError):
            subarray([4, 4], [2], [0], BYTE)  # rank mismatch

    def test_noncontiguous_base_rejected(self):
        holey = vector(2, 1, 2, BYTE)
        with pytest.raises(DatatypeError):
            subarray([4], [2], [0], holey)


class TestFlattenCountGeneric:
    @given(st.integers(0, 5), st.integers(1, 4), st.integers(1, 4))
    def test_count_scales_size(self, count, blocklength, gap):
        t = vector(3, blocklength, blocklength + gap, BYTE)
        el = t.flatten_count(count)
        assert el.total == count * t.size

    def test_blocks_against_numpy_reference(self):
        # Cross-check subarray flattening against a numpy mask.
        sizes, subsizes, starts = (5, 6, 7), (2, 3, 4), (1, 2, 3)
        t = subarray(sizes, subsizes, starts, BYTE)
        mask = np.zeros(sizes, dtype=bool)
        mask[
            starts[0] : starts[0] + subsizes[0],
            starts[1] : starts[1] + subsizes[1],
            starts[2] : starts[2] + subsizes[2],
        ] = True
        offsets = np.flatnonzero(mask.ravel(order="C"))
        expected = set(offsets.tolist())
        got = set()
        for off, length in t.flattened.to_pairs():
            got.update(range(off, off + length))
        assert got == expected
