"""Tests for MPI file views (displacement + etype + filetype tiling)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi import BYTE, INT, FileView, contiguous, contiguous_view, vector
from repro.util import FileViewError


class TestContiguousView:
    def test_identity_mapping(self):
        view = contiguous_view()
        assert view.extents_for(0, 100).to_pairs() == [(0, 100)]

    def test_displacement_shifts(self):
        view = contiguous_view(displacement=1000)
        assert view.extents_for(5, 10).to_pairs() == [(1005, 10)]

    def test_zero_bytes(self):
        assert contiguous_view().extents_for(50, 0).is_empty


class TestStridedView:
    @pytest.fixture
    def view(self):
        # filetype: 2 data bytes every 4 bytes, 3 blocks per tile
        # (tile: data at 0-1, 4-5, 8-9; extent 10; 6 data bytes/tile)
        return FileView(displacement=100, etype=BYTE, filetype=vector(3, 2, 4, BYTE))

    def test_tile_constants(self, view):
        assert view.bytes_per_tile == 6
        assert view.tile_extent == 10

    def test_within_one_tile(self, view):
        assert view.extents_for(0, 4).to_pairs() == [(100, 2), (104, 2)]

    def test_offset_within_tile(self, view):
        assert view.extents_for(1, 2).to_pairs() == [(101, 1), (104, 1)]

    def test_spanning_tiles(self, view):
        el = view.extents_for(0, 10)
        # tile 0 fully (6 B) + 4 B of tile 1 (at displacement+10)
        assert el.total == 10
        assert el.to_pairs() == [(100, 2), (104, 2), (108, 4), (114, 2)]

    def test_many_full_tiles_vectorized(self, view):
        el = view.extents_for(0, 6 * 100)
        assert el.total == 600
        assert el.envelope().offset == 100
        # last tile ends at displacement + 99*10 + 10 = 1100
        assert el.envelope().end == 100 + 99 * 10 + 10

    def test_mid_tile_to_mid_tile(self, view):
        el = view.extents_for(3, 6)
        assert el.total == 6
        # skips first 3 data bytes: starts inside block 1 of tile 0
        assert el.to_pairs()[0] == (105, 1)


class TestEtypeGranularity:
    def test_etype_offsets(self):
        view = FileView(displacement=0, etype=INT, filetype=contiguous(4, INT))
        el = view.extents_for_etypes(2, 4)
        assert el.to_pairs() == [(8, 16)]


class TestValidation:
    def test_negative_displacement(self):
        with pytest.raises(FileViewError):
            FileView(displacement=-1)

    def test_filetype_not_multiple_of_etype(self):
        with pytest.raises(FileViewError):
            FileView(etype=INT, filetype=contiguous(3, BYTE))

    def test_negative_access(self):
        view = contiguous_view()
        with pytest.raises(FileViewError):
            view.extents_for(-1, 10)
        with pytest.raises(FileViewError):
            view.extents_for(0, -10)


@given(
    st.integers(1, 4),  # blocklength
    st.integers(0, 4),  # gap between blocks
    st.integers(1, 5),  # blocks per tile
    st.integers(0, 200),  # view offset
    st.integers(0, 300),  # nbytes
)
def test_property_view_mapping_conserves_bytes(blocklength, gap, count, offset, nbytes):
    ft = vector(count, blocklength, blocklength + gap, BYTE)
    view = FileView(displacement=10, etype=BYTE, filetype=ft)
    el = view.extents_for(offset, nbytes)
    assert el.total == nbytes


@given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 100))
def test_property_view_slices_compose(a, b, c):
    """Mapping [0,a), [a,a+b), [a+b,a+b+c) tiles the mapping of [0,a+b+c)."""
    ft = vector(3, 2, 5, BYTE)
    view = FileView(displacement=7, etype=BYTE, filetype=ft)
    whole = view.extents_for(0, a + b + c)
    parts = [
        view.extents_for(0, a),
        view.extents_for(a, b),
        view.extents_for(a + b, c),
    ]
    from repro.util import ExtentList

    assert ExtentList.union_all(parts) == whole
    assert sum(p.total for p in parts) == whole.total
