"""Tests for the simulated communicator."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, NetworkModel, scaled_testbed
from repro.mpi import SimComm
from repro.util import CommunicatorError


@pytest.fixture
def comm():
    machine = scaled_testbed(4, cores_per_node=4)
    cluster = Cluster(machine, 8, procs_per_node=2)
    return SimComm(cluster, NetworkModel(machine))


class TestTopologyQueries:
    def test_size(self, comm):
        assert comm.size == 8

    def test_node_of(self, comm):
        assert comm.node_of(0) == 0
        assert comm.node_of(7) == 3

    def test_bad_rank(self, comm):
        with pytest.raises(CommunicatorError):
            comm.node_of(8)
        with pytest.raises(CommunicatorError):
            comm.check_rank(-1)

    def test_nodes_of_vectorized(self, comm):
        assert comm.nodes_of([0, 2, 7]).tolist() == [0, 1, 3]
        with pytest.raises(CommunicatorError):
            comm.nodes_of([0, 99])

    def test_ranks_by_node(self, comm):
        by_node = comm.ranks_by_node()
        assert by_node[0].tolist() == [0, 1]
        assert by_node[3].tolist() == [6, 7]


class TestCostModels:
    def test_offsets_exchange_scales_with_size(self, comm):
        assert comm.offsets_exchange_time(1) == 0.0
        t_all = comm.offsets_exchange_time()
        t_group = comm.offsets_exchange_time(4)
        assert 0 < t_group < t_all

    def test_allgather_time_increases_with_bytes(self, comm):
        assert comm.allgather_time(8) < comm.allgather_time(8000)

    def test_barrier(self, comm):
        assert comm.barrier_time(1) == 0.0
        assert comm.barrier_time() > 0
