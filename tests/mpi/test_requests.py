"""Tests for access requests (payload slicing/scattering, builders)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi import (
    AccessRequest,
    BYTE,
    FileView,
    pattern_bytes,
    request_from_view,
    vector,
)
from repro.mpi.requests import total_bytes
from repro.util import CommunicatorError, ExtentList


class TestAccessRequest:
    def test_payload_size_checked(self):
        el = ExtentList.from_pairs([(0, 10)])
        with pytest.raises(CommunicatorError):
            AccessRequest(0, el, np.zeros(5, dtype=np.uint8))

    def test_negative_rank_rejected(self):
        with pytest.raises(CommunicatorError):
            AccessRequest(-1, ExtentList.empty())

    def test_nbytes(self):
        el = ExtentList.from_pairs([(0, 10), (20, 5)])
        assert AccessRequest(3, el).nbytes == 15

    def test_slice_payload(self):
        el = ExtentList.from_pairs([(0, 4), (10, 4)])
        data = np.arange(8, dtype=np.uint8)
        req = AccessRequest(0, el, data)
        piece = ExtentList.from_pairs([(2, 2), (10, 2)])
        assert req.slice_payload(piece).tolist() == [2, 3, 4, 5]

    def test_slice_without_data_rejected(self):
        req = AccessRequest(0, ExtentList.from_pairs([(0, 4)]))
        with pytest.raises(CommunicatorError):
            req.slice_payload(ExtentList.from_pairs([(0, 2)]))

    def test_scatter_payload(self):
        el = ExtentList.from_pairs([(0, 4), (10, 4)])
        req = AccessRequest(0, el)
        req.scatter_payload(ExtentList.from_pairs([(10, 4)]), b"wxyz")
        req.scatter_payload(ExtentList.from_pairs([(0, 4)]), b"abcd")
        assert bytes(req.data) == b"abcdwxyz"

    def test_scatter_size_mismatch(self):
        req = AccessRequest(0, ExtentList.from_pairs([(0, 4)]))
        with pytest.raises(CommunicatorError):
            req.scatter_payload(ExtentList.from_pairs([(0, 4)]), b"xy")


class TestBuilders:
    def test_request_from_view(self):
        view = FileView(displacement=100, etype=BYTE, filetype=vector(2, 2, 4, BYTE))
        req = request_from_view(5, view, nbytes=4)
        assert req.rank == 5
        assert req.extents.to_pairs() == [(100, 2), (104, 2)]

    def test_total_bytes(self):
        reqs = [
            AccessRequest(0, ExtentList.from_pairs([(0, 10)])),
            AccessRequest(1, ExtentList.from_pairs([(10, 5)])),
        ]
        assert total_bytes(reqs) == 15


class TestPatternBytes:
    def test_deterministic_by_offset(self):
        a = pattern_bytes(ExtentList.from_pairs([(0, 100)]))
        b = pattern_bytes(ExtentList.from_pairs([(0, 50), (50, 50)]))
        assert np.array_equal(a, b)

    def test_sub_extent_matches_parent(self):
        whole = pattern_bytes(ExtentList.from_pairs([(0, 100)]))
        part = pattern_bytes(ExtentList.from_pairs([(40, 10)]))
        assert np.array_equal(whole[40:50], part)

    def test_salt_changes_pattern(self):
        el = ExtentList.from_pairs([(0, 64)])
        assert not np.array_equal(pattern_bytes(el, 0), pattern_bytes(el, 1))

    def test_empty(self):
        assert pattern_bytes(ExtentList.empty()).size == 0


@given(
    st.lists(
        st.tuples(st.integers(0, 500), st.integers(1, 40)),
        min_size=1,
        max_size=10,
    )
)
def test_property_slice_scatter_roundtrip(pairs):
    el = ExtentList.from_pairs(pairs)
    data = pattern_bytes(el)
    req = AccessRequest(0, el, data.copy())
    # slice out the middle third by byte rank, scatter it into a copy
    third = el.total // 3
    piece = el.slice_bytes(third, 2 * third)
    if piece.is_empty:
        return
    sliced = req.slice_payload(piece)
    other = AccessRequest(0, el, np.zeros(el.total, dtype=np.uint8))
    other.scatter_payload(piece, sliced)
    assert np.array_equal(other.slice_payload(piece), sliced)
