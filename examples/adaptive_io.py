#!/usr/bin/env python3
"""Adaptive middleware: profile the pattern, pick the strategy, run it.

Uses the MPI-IO style :class:`CollectiveFile` facade together with the
strategy advisor: three very different applications open the same
simulated machine, the advisor inspects each one's flattened access
pattern and the memory situation, explains its reasoning, and the
chosen strategy executes the collective write (byte-verified).

Run:  python examples/adaptive_io.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CollectiveFile,
    CollectiveHints,
    ExtentList,
    MemoryConsciousConfig,
    make_context,
    mib,
    pattern_bytes,
    render_table,
    scaled_testbed,
)
from repro.core import advise
from repro.workloads import (
    CheckpointWorkload,
    DatasetSpec,
    IORWorkload,
    SkewedWorkload,
)

N = 24


def scenario_contexts():
    machine = scaled_testbed(4, cores_per_node=12)
    scenarios = [
        (
            "bulk dump (contiguous 16 MiB/rank)",
            SkewedWorkload(N, base_bytes=mib(16), decay=1.0),
            mib(64),  # plenty of memory
        ),
        (
            "analysis output (interleaved 128 KiB records)",
            IORWorkload(N, block_size=mib(2), transfer_size=mib(1) // 8),
            mib(64),
        ),
        (
            "checkpoint under memory pressure",
            CheckpointWorkload(
                N, [DatasetSpec((48, 48, 32))], header_bytes=4096
            ),
            mib(1),  # scarce + uneven
        ),
    ]
    for title, workload, avail in scenarios:
        ctx = make_context(
            machine, N, procs_per_node=12, track_data=True, seed=31,
            hints=CollectiveHints(cb_buffer_size=mib(4)),
        )
        ctx.cluster.apply_memory_variance(
            ctx.rng, mean_available=avail, std=mib(8)
        )
        yield title, workload, ctx


def main() -> None:
    rows = []
    for title, workload, ctx in scenario_contexts():
        requests = workload.requests(with_data=True)
        rec = advise(ctx, requests)
        print(f"{title}:")
        for reason in rec.reasons:
            print(f"  - {reason}")
        strategy = rec.build(
            MemoryConsciousConfig(msg_ind=mib(2), msg_group=mib(16),
                                  nah=4, mem_min=mib(1) // 2)
        )

        file = CollectiveFile.open(ctx, "out.dat", strategy=strategy)
        result = strategy.write(ctx, file.sim_file, requests)

        expected = ExtentList.union_all([r.extents for r in requests])
        ok = np.array_equal(
            file.sim_file.apply_read(expected), pattern_bytes(expected)
        )
        rows.append(
            (
                title,
                rec.strategy_name,
                f"{result.bandwidth / mib(1):.0f} MiB/s",
                "yes" if ok else "NO",
            )
        )
        print()
    print(
        render_table(
            ["scenario", "advised strategy", "bandwidth", "verified"],
            rows,
            title="adaptive strategy selection",
        )
    )


if __name__ == "__main__":
    main()
