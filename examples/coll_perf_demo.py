#!/usr/bin/env python3
"""coll_perf: the 3-D block-distributed array benchmark (paper Section 4.1).

The ROMIO test program writes and reads a 3-D block-distributed array to
a file in global row-major order; each process's block becomes a comb of
short contiguous pencils — thousands of small noncontiguous requests.
This demo runs a scaled version (the paper used 2048 cubed over 120
processes / 32 GB) with both collective strategies, verifies the bytes,
and reports the memory statistics the paper argues about: per-aggregator
buffer consumption and its variance.

Run:  python examples/coll_perf_demo.py [--procs 24] [--n 96]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    CollectiveHints,
    CollPerfWorkload,
    ExtentList,
    INT,
    MemoryConsciousCollectiveIO,
    MemoryConsciousConfig,
    TwoPhaseCollectiveIO,
    make_context,
    mib,
    pattern_bytes,
    render_table,
    scaled_testbed,
)
from repro.metrics import memory_summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--procs", type=int, default=24)
    parser.add_argument("--n", type=int, default=96, help="array edge length")
    args = parser.parse_args()

    machine = scaled_testbed(max(2, args.procs // 12), cores_per_node=12)
    workload = CollPerfWorkload(args.procs, (args.n, args.n, args.n), element=INT)
    print(
        f"coll_perf: {args.n}^3 INT array = "
        f"{workload.total_bytes() >> 20} MiB over {args.procs} processes, "
        f"grid {workload.grid}, "
        f"{len(workload.extents_for_rank(0))} pencils per rank\n"
    )

    config = MemoryConsciousConfig(
        msg_ind=mib(4), msg_group=mib(32), nah=4, mem_min=mib(1)
    )
    rows = []
    for name, strategy in [
        ("two-phase", TwoPhaseCollectiveIO()),
        ("memory-conscious", MemoryConsciousCollectiveIO(config)),
    ]:
        ctx = make_context(
            machine, args.procs, procs_per_node=12, track_data=True,
            hints=CollectiveHints(cb_buffer_size=mib(4)), seed=1,
        )
        ctx.cluster.apply_memory_variance(
            ctx.rng, mean_available=mib(8), std=mib(16)
        )
        file = ctx.pfs.open("collperf.dat")
        reqs = workload.requests(with_data=True)
        w = strategy.write(ctx, file, reqs)

        expected = ExtentList.union_all([r.extents for r in reqs])
        assert np.array_equal(
            file.apply_read(expected), pattern_bytes(expected)
        ), f"{name} corrupted the array!"

        r = strategy.read(
            ctx, file, [type(rq)(rq.rank, rq.extents) for rq in reqs]
        )
        mem = memory_summary(w)
        rows.append(
            (
                name,
                f"{w.bandwidth / mib(1):.0f} MiB/s",
                f"{r.bandwidth / mib(1):.0f} MiB/s",
                mem.n_aggregators,
                f"{mem.mean_buffer_bytes / mib(1):.2f} MiB",
                f"{mem.std_buffer_bytes / mib(1):.2f} MiB",
            )
        )

    print(
        render_table(
            ["strategy", "write bw", "read bw", "aggs", "mean buffer", "buffer std"],
            rows,
            title="coll_perf write+read (verified byte-accurate)",
        )
    )


if __name__ == "__main__":
    main()
