#!/usr/bin/env python3
"""Checkpoint/restart under memory pressure — the motivating scenario.

Data-intensive applications checkpoint by collectively dumping their
state to a shared file while the *application itself* is using most of
each node's memory — and unevenly so (the paper's 'significant variance
of available memory among nodes'). This example simulates exactly that:

1. an application with a skewed per-rank state (some ranks hold far
   more data), leaving each node a random sliver of free memory;
2. a collective checkpoint write with both strategies (verified
   byte-accurate);
3. a restart: the checkpoint is collectively read back and checked
   against the original state.

Also shows `auto_tune` calibrating Nah/Msg_ind/Msg_group for the
machine before the run, as the paper's prototype does.

Run:  python examples/checkpoint_restart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AccessRequest,
    CollectiveHints,
    ExtentList,
    MemoryConsciousCollectiveIO,
    TwoPhaseCollectiveIO,
    auto_tune,
    make_context,
    mib,
    pattern_bytes,
    render_table,
    scaled_testbed,
)
from repro.workloads import SkewedWorkload


def main() -> None:
    n_procs = 48
    machine = scaled_testbed(4, cores_per_node=12)

    # Calibrate the strategy for this machine (paper Section 3).
    tuning = auto_tune(machine)
    config = tuning.as_config()
    print(
        f"calibrated: Nah={tuning.nah}, Msg_ind={tuning.msg_ind >> 20} MiB, "
        f"Mem_min={tuning.mem_min >> 20} MiB, "
        f"Msg_group={tuning.msg_group >> 20} MiB\n"
    )

    # Application state: geometric skew — rank 0 holds 32 MiB, decaying.
    state = SkewedWorkload(n_procs, base_bytes=mib(32), decay=0.82)
    total = sum(state.extents_for_rank(r).total for r in range(n_procs))
    print(f"checkpoint size: {total >> 20} MiB across {n_procs} ranks "
          f"(largest rank: {state.extents_for_rank(0).total >> 20} MiB)\n")

    rows = []
    for name, strategy in [
        ("two-phase", TwoPhaseCollectiveIO()),
        ("memory-conscious", MemoryConsciousCollectiveIO(config)),
    ]:
        ctx = make_context(
            machine, n_procs, procs_per_node=12, track_data=True,
            hints=CollectiveHints(cb_buffer_size=mib(8)), seed=99,
        )
        # The application occupies the nodes unevenly: free memory is a
        # random sliver, 8 MiB on average, sigma 50 MiB (paper's setup).
        free = ctx.cluster.apply_memory_variance(
            ctx.rng, mean_available=mib(8), std=mib(50)
        )
        checkpoint = ctx.pfs.open("checkpoint.dat")

        write_reqs = state.requests(with_data=True)
        w = strategy.write(ctx, checkpoint, write_reqs)

        # Restart: read everything back and verify against the state.
        read_reqs = [AccessRequest(r.rank, r.extents) for r in write_reqs]
        r = strategy.read(ctx, checkpoint, read_reqs)
        restored = all(
            np.array_equal(rd.data, wr.data)
            for wr, rd in zip(write_reqs, read_reqs)
        )

        rows.append(
            (
                name,
                f"{w.bandwidth / mib(1):.0f} MiB/s",
                f"{r.bandwidth / mib(1):.0f} MiB/s",
                w.n_aggregators,
                f"{w.inter_node_fraction:.0%}",
                "ok" if restored else "CORRUPT",
            )
        )
        if name == "memory-conscious":
            placed_nodes = sorted({a.node_id for a in w.aggregators})
            print(
                f"free memory per node: "
                f"{[int(x) >> 20 for x in free]} MiB -> "
                f"MC aggregators placed on nodes {placed_nodes}"
            )

    print()
    print(
        render_table(
            ["strategy", "checkpoint bw", "restart bw", "aggs", "inter-node", "verified"],
            rows,
            title="checkpoint/restart under application memory pressure",
        )
    )


if __name__ == "__main__":
    main()
