#!/usr/bin/env python3
"""Quickstart: one collective write, three ways.

Builds a small simulated cluster, generates an interleaved shared-file
workload (the access pattern collective I/O exists for), runs it through
independent I/O, ROMIO-style two-phase collective I/O, and the paper's
memory-conscious collective I/O, verifies every strategy produced the
exact same bytes on disk, and prints the timing/memory story — including
the two-phase plan structure of the paper's Figure 2 (aggregators, file
domains, rounds).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Experiment,
    IORWorkload,
    MemoryConsciousConfig,
    ExtentList,
    mib,
    pattern_bytes,
    render_table,
    scaled_testbed,
)


def main() -> None:
    # A 6-node slice of the paper's testbed; 12 ranks, 2 per node.
    machine = scaled_testbed(6, cores_per_node=4)
    n_procs = 12

    # IOR-style interleaved accesses: every rank writes 1 MiB as 64 KiB
    # transfers combed across the shared file.
    workload = IORWorkload(n_procs, block_size=mib(1), transfer_size=mib(1) // 16)
    expected = ExtentList.union_all(
        [workload.extents_for_rank(r) for r in range(n_procs)]
    )
    print(f"workload: {workload.name}, {workload.total_bytes() >> 20} MiB total, "
          f"{len(workload.extents_for_rank(0))} segments per rank\n")

    # One spec, three strategies: everything else — machine, workload,
    # memory variance (the paper's extreme-scale regime), verified data
    # tracking — is shared through Experiment.replace().
    base = Experiment(
        machine=machine,
        workload=workload,
        n_procs=n_procs,
        procs_per_node=2,
        seed=42,
        cb_buffer=mib(1) // 2,
        memory_variance_mean=mib(1),
        memory_variance_std=mib(2),
        track_data=True,  # byte-accurate mode: writes are verified
        file_name="shared.dat",
    )
    experiments = [
        base.replace(strategy="independent"),
        base.replace(strategy="two-phase"),
        base.replace(
            strategy="mc",
            config=MemoryConsciousConfig(
                msg_ind=mib(1), msg_group=mib(4), nah=2, mem_min=mib(1) // 4
            ),
        ),
    ]

    rows = []
    for exp in experiments:
        ctx = exp.context()
        result = exp.run(ctx=ctx)
        file = ctx.pfs.open(exp.file_name)

        ok = np.array_equal(file.apply_read(expected), pattern_bytes(expected))
        rows.append(
            (
                result.strategy,
                f"{result.elapsed * 1e3:.2f} ms",
                f"{result.bandwidth / mib(1):.1f} MiB/s",
                result.n_aggregators,
                result.n_rounds,
                f"{result.inter_node_fraction:.0%}",
                "yes" if ok else "NO!",
            )
        )

        if result.strategy == "two-phase":
            # The Figure 2 structure: aggregators, their file domains,
            # and the two phases per round.
            print("two-phase plan (cf. paper Figure 2):")
            for agg in result.aggregators:
                print(
                    f"  aggregator rank {agg.rank:>2} on node {agg.node_id}: "
                    f"file domain of {agg.domain_bytes >> 10} KiB, "
                    f"{agg.rounds} round(s) x {agg.buffer_bytes >> 10} KiB buffer"
                )
            phases = [p.name for p in result.trace][:4]
            print(f"  phases: {' -> '.join(phases)} ...\n")

    print(
        render_table(
            ["strategy", "time", "bandwidth", "aggs", "rounds", "inter-node", "verified"],
            rows,
            title="one collective write, three strategies",
        )
    )


if __name__ == "__main__":
    main()
