#!/usr/bin/env python3
"""IOR memory sweep — a laptop-sized rendition of the paper's Figure 7.

Sweeps the per-aggregator memory budget on the (simulated) 640-node
testbed and compares normal two-phase collective I/O against the
memory-conscious strategy, write and read, exactly as the evaluation
section does: the baseline uses a fixed buffer equal to the budget on
every node, while MC-CIO sees per-node available memory drawn from
Normal(budget, 50 MB) and adapts (the paper's variance setup).

Run:  python examples/ior_sweep.py [--procs 120] [--per-proc-mib 8]
"""

from __future__ import annotations

import argparse

from repro import (
    CollectiveHints,
    IORWorkload,
    MemoryConsciousCollectiveIO,
    RunComparison,
    TwoPhaseCollectiveIO,
    auto_tune,
    bandwidth_table,
    make_context,
    mib,
    testbed_640,
)


def run_sweep(n_procs: int, per_proc: int, kind: str, seed: int = 7) -> RunComparison:
    machine = testbed_640()
    workload = IORWorkload(n_procs, block_size=per_proc, transfer_size=mib(2))
    config = auto_tune(machine).as_config()
    mem_points = [mib(2), mib(4), mib(8), mib(16), mib(32), mib(64), mib(128)]

    baseline, mc = [], []
    for mem in mem_points:
        ctx = make_context(
            machine, n_procs, procs_per_node=12, seed=seed,
            hints=CollectiveHints(cb_buffer_size=mem),
        )
        baseline.append(
            TwoPhaseCollectiveIO().run(
                ctx, ctx.pfs.open("ior"), workload.requests(), kind=kind
            )
        )
        ctx = make_context(
            machine, n_procs, procs_per_node=12, seed=seed,
            hints=CollectiveHints(cb_buffer_size=mem),
        )
        ctx.cluster.apply_memory_variance(
            ctx.rng, mean_available=mem, std=mib(50)
        )
        mc.append(
            MemoryConsciousCollectiveIO(config).run(
                ctx, ctx.pfs.open("ior"), workload.requests(), kind=kind
            )
        )
    return RunComparison("memory per aggregator", mem_points, baseline, mc)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--procs", type=int, default=120)
    parser.add_argument("--per-proc-mib", type=int, default=8)
    args = parser.parse_args()

    for kind in ("write", "read"):
        cmp = run_sweep(args.procs, mib(args.per_proc_mib), kind)
        print(
            bandwidth_table(
                "memory",
                cmp.bandwidth_rows(),
                title=f"\nIOR {kind}, {args.procs} processes "
                f"({args.per_proc_mib} MiB/process)",
            )
        )
        best, at = cmp.best_improvement
        print(
            f"average improvement {cmp.average_improvement:+.1%}; "
            f"best {best:+.1%} at {at >> 20} MiB"
        )


if __name__ == "__main__":
    main()
