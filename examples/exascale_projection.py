#!/usr/bin/env python3
"""The exascale argument: Table 1 and what it means for collective I/O.

Prints the paper's Table 1 (2010 petascale vs projected 2018 exascale
design, after Vetter et al.), evaluates the memory-per-core formula
fm/(fs*fn), and then *demonstrates* the consequence on the simulator:
the same collective write executed on machine models with progressively
less memory per core, showing the baseline two-phase strategy falling
away from the memory-conscious one as the memory wall closes in.

Run:  python examples/exascale_projection.py
"""

from __future__ import annotations

from repro import (
    CollectiveHints,
    IORWorkload,
    MemoryConsciousCollectiveIO,
    MemoryConsciousConfig,
    TwoPhaseCollectiveIO,
    make_context,
    memory_per_core_factor,
    mib,
    projection_table,
    render_table,
    scaled_testbed,
)


def print_table1() -> None:
    rows = [
        (r.label, f"{r.value_2010:g}", f"{r.value_2018:g}", f"{r.factor:.0f}x")
        for r in projection_table()
    ]
    print(render_table(["metric", "2010", "2018", "factor"], rows,
                       title="Table 1 (after Vetter et al.)"))
    f = memory_per_core_factor()
    print(
        f"\nmemory per core scales by fm/(fs*fn) = {f:.5f} — "
        f"a ~{1 / f:.0f}x reduction, into single-digit megabytes.\n"
    )


def memory_wall_demo() -> None:
    """Shrink per-node memory while holding the workload: who survives?"""
    n_procs = 48
    workload = IORWorkload(n_procs, block_size=mib(16), transfer_size=mib(2))
    config = MemoryConsciousConfig(
        msg_ind=mib(4), msg_group=mib(64), nah=4, mem_min=mib(1)
    )
    rows = []
    for mem_per_core in (mib(64), mib(16), mib(4), mib(1)):
        machine = scaled_testbed(4, cores_per_node=12)
        results = {}
        for name, strategy in [
            ("two-phase", TwoPhaseCollectiveIO()),
            ("mc-cio", MemoryConsciousCollectiveIO(config)),
        ]:
            ctx = make_context(
                machine, n_procs, procs_per_node=12, seed=3,
                hints=CollectiveHints(cb_buffer_size=mem_per_core),
            )
            ctx.cluster.apply_memory_variance(
                ctx.rng, mean_available=mem_per_core * 12, std=mib(50)
            )
            file = ctx.pfs.open("wall")
            results[name] = strategy.write(ctx, file, workload.requests())
        base, mc = results["two-phase"], results["mc-cio"]
        rows.append(
            (
                f"{mem_per_core >> 20} MiB/core",
                f"{base.bandwidth / mib(1):.0f} MiB/s",
                f"{mc.bandwidth / mib(1):.0f} MiB/s",
                f"{mc.bandwidth / base.bandwidth - 1:+.0%}",
            )
        )
    print(
        render_table(
            ["memory per core", "two-phase", "memory-conscious", "gap"],
            rows,
            title="the memory wall, simulated (48-rank IOR write)",
        )
    )


def main() -> None:
    print_table1()
    memory_wall_demo()


if __name__ == "__main__":
    main()
